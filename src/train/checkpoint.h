/**
 * @file
 * Checkpoint/restart cost model and fault-aware time-to-train.
 *
 * The steady-state Trainer result assumes every component survives
 * the whole run. This module layers failure awareness on top: a
 * checkpoint cost model (snapshot bytes from the model's parameter
 * and optimizer state, drained over the GPU-to-host path of the
 * machine's topology), a Young–Daly-style optimal checkpoint-interval
 * solver, and a deterministic replay of a FaultModel trace that turns
 * the steady-state iteration time into the *expected* time-to-train
 * under faults — with goodput, availability and lost-work breakdowns.
 */

#ifndef MLPSIM_TRAIN_CHECKPOINT_H
#define MLPSIM_TRAIN_CHECKPOINT_H

#include "fault/fault_model.h"
#include "sys/system_config.h"
#include "train/training_job.h"
#include "wl/workload.h"

namespace mlps::train {

/** Cost model of one checkpoint/restart cycle. */
struct CheckpointModel {
    /** Snapshot size: fp32 master weights + optimizer state, bytes. */
    double bytes = 0.0;
    /** Drain bandwidth over the GPU-to-host path, bytes/s. */
    double write_bytes_per_s = 0.0;
    /** Fixed quiesce/serialize barrier per checkpoint, seconds. */
    double barrier_s = 2.0;
    /** Relaunch + weight-reload cost after a failure, seconds. */
    double restart_s = 30.0;

    /** Wall time of one checkpoint, seconds. */
    double checkpointSeconds() const;

    /** Sanity-check parameter ranges; fatal() when malformed. */
    void validate() const;
};

/**
 * Derive the checkpoint cost model of a workload on a machine: only
 * rank 0 writes (data-parallel replicas are identical), draining over
 * the first GPU's path to its host CPU.
 */
CheckpointModel checkpointModelFor(const sys::SystemConfig &system,
                                   const wl::WorkloadSpec &spec);

/**
 * Young–Daly closed-form checkpoint interval sqrt(2 * C * MTTF),
 * seconds. C is the checkpoint cost, MTTF the mean time between
 * *fatal* (work-losing) failures.
 */
double youngDalyInterval(double checkpoint_s, double mttf_s);

/**
 * Expected wall time to complete `work_s` seconds of useful work
 * under exponential failures (rate 1/mttf_s), checkpointing every
 * `interval_s` seconds of progress. First-principles exponential
 * model; reduces to work_s * (1 + C/tau) when failures are disabled
 * (mttf_s <= 0 or infinite).
 */
double expectedRunSeconds(double work_s, double interval_s,
                          double checkpoint_s, double restart_s,
                          double mttf_s);

/**
 * Numerically optimal checkpoint interval: minimises
 * expectedRunSeconds over the interval. Agrees with youngDalyInterval
 * to first order when checkpoint cost << MTTF.
 */
double optimalCheckpointInterval(double checkpoint_s, double restart_s,
                                 double mttf_s);

/** Fault-adjusted outcome of one training run. */
struct FaultedTrainResult {
    /** The fault-free steady-state result the adjustment started from. */
    TrainResult base;
    /** Checkpoint interval used, seconds (infinity = never). */
    double checkpoint_interval_s = 0.0;
    /** Cost of one checkpoint, seconds. */
    double checkpoint_s = 0.0;

    /** Expected end-to-end wall time under the fault trace, seconds. */
    double expected_seconds = 0.0;
    /** Wall time spent writing checkpoints, seconds. */
    double checkpoint_overhead_s = 0.0;
    /** Extra wall time from degraded (slow-running) windows, seconds. */
    double degraded_overhead_s = 0.0;
    /** Work redone because a failure discarded it, seconds. */
    double lost_work_s = 0.0;
    /** Wall time spent relaunching after failures, seconds. */
    double restart_overhead_s = 0.0;

    /** Work-losing failures hit (preemptions + GPU losses). */
    int failures = 0;
    /** Transient degradation windows overlapping the run. */
    int degradations = 0;

    /** Useful-work fraction of wall time: base time / expected time. */
    double goodput() const
    {
        return expected_seconds > 0.0
                   ? base.total_seconds / expected_seconds
                   : 1.0;
    }

    /** Fraction of wall time making forward progress at any rate. */
    double availability() const
    {
        double stalled = checkpoint_overhead_s + lost_work_s +
                         restart_overhead_s;
        return expected_seconds > 0.0
                   ? 1.0 - stalled / expected_seconds
                   : 1.0;
    }
};

/**
 * Replay a deterministic fault trace against a steady-state run:
 * degradation windows scale the iteration time through the run's own
 * breakdown (a host hiccup only hurts host-bound workloads, a link
 * flap only communication-bound ones), fatal events discard work
 * since the last checkpoint and pay the restart cost. The checkpoint
 * interval defaults to the numerically optimal one for the trace's
 * fatal-event MTTF; pass interval_s > 0 to override.
 *
 * Deterministic: the same base result, model, and seed always yield
 * the same FaultedTrainResult.
 */
FaultedTrainResult applyFaultTrace(const TrainResult &base,
                                   const CheckpointModel &ckpt,
                                   const fault::FaultModel &faults,
                                   double interval_s = 0.0);

} // namespace mlps::train

#endif // MLPSIM_TRAIN_CHECKPOINT_H
