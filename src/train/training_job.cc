#include "train/training_job.h"

// RunOptions/TrainResult are plain aggregates; this TU anchors the
// header in the build so include hygiene is checked.
