/**
 * @file
 * Run configuration and result types of the training engine.
 */

#ifndef MLPSIM_TRAIN_TRAINING_JOB_H
#define MLPSIM_TRAIN_TRAINING_JOB_H

#include <string>

#include "hw/precision.h"
#include "net/topology.h"
#include "wl/workload.h"

namespace mlps::train {

/** Options of one training (or kernel-loop) run. */
struct RunOptions {
    /** Data-parallel replica count (<= system GPU count). */
    int num_gpus = 1;
    /** Numeric regime. */
    hw::Precision precision = hw::Precision::Mixed;
    /**
     * Run the unoptimised v0.5 reference implementation instead of the
     * tuned vendor submission (the paper's P100 reference column).
     * Applies the workload's reference_code_derate.
     */
    bool reference_code = false;
    /**
     * When HBM capacity cannot hold the submission batch, run several
     * micro-batches per optimizer step instead of shrinking the
     * global batch (framework gradient accumulation). Preserves
     * convergence behaviour at the cost of extra compute passes.
     */
    bool grad_accumulation = false;
};

/** Steady-state per-iteration time breakdown, seconds. */
struct IterationBreakdown {
    double fwd_s = 0.0;           ///< forward kernels
    double bwd_s = 0.0;           ///< backward kernels
    double optimizer_s = 0.0;     ///< weight update
    double comm_s = 0.0;          ///< full all-reduce duration
    double exposed_comm_s = 0.0;  ///< all-reduce not hidden under bwd
    double h2d_s = 0.0;           ///< input staging over PCIe
    double host_s = 0.0;          ///< host pipeline wall time
    double overhead_s = 0.0;      ///< serial framework overhead
    double gpu_busy_s = 0.0;      ///< kernels + exposed collectives
    double iteration_s = 0.0;     ///< pipelined iteration time
    int kernel_launches = 0;      ///< kernels per iteration per GPU
    int micro_batches = 1;        ///< gradient-accumulation passes
    int reroutes = 0;             ///< ring hops routed around down links
};

/** Steady-state system resource usage (Table V quantities). */
struct ResourceUsage {
    double cpu_util_pct = 0.0;      ///< % of all host cores
    double gpu_util_pct_sum = 0.0;  ///< summed over GPUs (100% each)
    double dram_footprint_mb = 0.0; ///< host DRAM
    double hbm_footprint_mb = 0.0;  ///< summed over GPUs
    double pcie_mbps = 0.0;         ///< summed bidirectional Mbit/s
    double nvlink_mbps = 0.0;       ///< summed Mbit/s
};

/** Complete result of one run. */
struct TrainResult {
    std::string workload;            ///< abbrev
    std::string system;              ///< system name
    int num_gpus = 1;
    hw::Precision precision = hw::Precision::Mixed;
    bool reference_code = false;

    double per_gpu_batch = 0.0;
    double global_batch = 0.0;
    double steps_per_epoch = 0.0;
    double epochs = 0.0;

    IterationBreakdown iter;
    ResourceUsage usage;
    net::CollectiveFabric fabric = net::CollectiveFabric::HostStaged;

    /** End-to-end time to the quality target, seconds. */
    double total_seconds = 0.0;

    /** Achieved training FLOP/s across all GPUs. */
    double achieved_flops = 0.0;
    /** Achieved HBM traffic, bytes/s across all GPUs. */
    double achieved_bytes_per_sec = 0.0;

    /** Total time in minutes (Table IV unit). */
    double totalMinutes() const { return total_seconds / 60.0; }
    /** Total time in hours. */
    double totalHours() const { return total_seconds / 3600.0; }
    /** Training arithmetic intensity, FLOPs/byte. */
    double arithmeticIntensity() const {
        return achieved_bytes_per_sec > 0.0
                   ? achieved_flops / achieved_bytes_per_sec
                   : 0.0;
    }
};

} // namespace mlps::train

#endif // MLPSIM_TRAIN_TRAINING_JOB_H
