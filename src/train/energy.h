/**
 * @file
 * Energy-to-train estimation — an efficiency lens the paper's
 * time-to-quality metric invites but does not take. Combines the
 * modeled utilizations with first-order device power models to give
 * energy and average power for a run; mixed precision and faster
 * interconnects shorten runs and therefore cut energy nearly
 * proportionally.
 */

#ifndef MLPSIM_TRAIN_ENERGY_H
#define MLPSIM_TRAIN_ENERGY_H

#include "sys/system_config.h"
#include "train/training_job.h"

namespace mlps::train {

/** Energy breakdown of one run. */
struct EnergyReport {
    double gpu_kwh = 0.0;  ///< all GPUs, including idle floor
    double cpu_kwh = 0.0;  ///< all sockets
    double rest_kwh = 0.0; ///< DRAM, fans, PSU losses (fixed overhead)
    double avg_watts = 0.0;

    double totalKwh() const { return gpu_kwh + cpu_kwh + rest_kwh; }
};

/** Tunables of the platform power model. */
struct PowerModelParams {
    /** Non-CPU/GPU platform draw (DRAM, fans, NICs, PSU), watts. */
    double platform_overhead_watts = 180.0;
    /**
     * Idle power of GPUs present in the chassis but unused by the
     * run still counts toward the bill.
     */
    bool charge_idle_gpus = true;
};

/**
 * Estimate the energy of a modeled run on its system.
 *
 * @param system  the machine the result was produced on.
 * @param result  the run.
 * @param params  platform power tunables.
 */
EnergyReport estimateEnergy(const sys::SystemConfig &system,
                            const TrainResult &result,
                            const PowerModelParams &params = {});

} // namespace mlps::train

#endif // MLPSIM_TRAIN_ENERGY_H
