#include "train/precision_policy.h"

namespace mlps::train {

double
PrecisionPolicy::gradientBytesPerParam() const
{
    switch (precision) {
      case hw::Precision::FP64: return 8.0;
      case hw::Precision::FP32: return 4.0;
      case hw::Precision::FP16:
      case hw::Precision::Mixed: return 2.0;
    }
    return 4.0;
}

double
PrecisionPolicy::stateBytesPerParam() const
{
    switch (precision) {
      case hw::Precision::FP64:
        return 8.0 + 8.0 + 8.0;        // weights + momentum + grads
      case hw::Precision::FP32:
        return 4.0 + 4.0 + 4.0;
      case hw::Precision::FP16:
        return 2.0 + 2.0 + 2.0;
      case hw::Precision::Mixed:
        return 2.0 + 4.0 + 4.0 + 2.0;  // fp16 w + master + momentum + g
    }
    return 12.0;
}

double
PrecisionPolicy::activationBytesPerElement() const
{
    return hw::bytesPerElement(precision);
}

PrecisionPolicy
fp32Policy()
{
    return PrecisionPolicy{hw::Precision::FP32};
}

PrecisionPolicy
mixedPolicy()
{
    return PrecisionPolicy{hw::Precision::Mixed};
}

} // namespace mlps::train
