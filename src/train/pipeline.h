/**
 * @file
 * Discrete-event simulation of the training input pipeline.
 *
 * The steady-state analytic model (Trainer) assumes a perfectly
 * software-pipelined iteration: time = max(host, h2d, gpu). This
 * module simulates the actual producer/consumer pipeline with
 * bounded prefetch buffers on the event kernel, capturing warm-up
 * transients, buffer stalls, and jittered stage times. It validates
 * the analytic assumption (they agree in steady state) and quantifies
 * when it breaks (shallow prefetch queues, high jitter).
 */

#ifndef MLPSIM_TRAIN_PIPELINE_H
#define MLPSIM_TRAIN_PIPELINE_H

#include <cstdint>

#include "sim/rng.h"

namespace mlps::train {

/** Stage durations and queueing structure of the pipeline. */
struct PipelineStages {
    /** Host preprocessing time per batch, seconds. */
    double host_s = 0.0;
    /** Host-to-device copy time per batch, seconds. */
    double h2d_s = 0.0;
    /** GPU compute (+ exposed collective + overhead) per batch, s. */
    double gpu_s = 0.0;
    /**
     * Prefetch depth: batches the host may run ahead of the GPU
     * (framework data-loader queue length). Depth 1 serialises the
     * stages; typical frameworks use 2-4.
     */
    int prefetch_depth = 2;
    /**
     * Log-normal sigma of per-batch stage jitter (0 = deterministic).
     */
    double jitter_sigma = 0.0;
};

/** Outcome of a pipeline simulation. */
struct PipelineResult {
    /** Total time to finish all batches, seconds. */
    double makespan_s = 0.0;
    /** Steady-state per-iteration time (excluding warm-up), s. */
    double steady_iteration_s = 0.0;
    /** Time the GPU spent idle waiting for input, seconds. */
    double gpu_stall_s = 0.0;
    /** Time the host spent blocked on a full prefetch queue, s. */
    double host_block_s = 0.0;
    /** Events executed by the simulation kernel. */
    std::uint64_t events = 0;
};

/**
 * Simulate `iterations` batches through the three-stage pipeline.
 *
 * @param stages stage model.
 * @param iterations batch count (>= 2).
 * @param seed RNG seed for jitter (ignored when jitter_sigma == 0).
 */
PipelineResult simulatePipeline(const PipelineStages &stages,
                                int iterations,
                                std::uint64_t seed = 1);

/** The analytic steady-state prediction: max of the stage times. */
double analyticIteration(const PipelineStages &stages);

} // namespace mlps::train

#endif // MLPSIM_TRAIN_PIPELINE_H
