#include "train/pipeline.h"

#include <algorithm>
#include <vector>

#include "sim/event_queue.h"
#include "sim/logger.h"

namespace mlps::train {

namespace {

using sim::SimTime;

/** Pipeline state machine driven by the event kernel. */
class PipelineMachine
{
  public:
    PipelineMachine(const PipelineStages &stages, int iterations,
                    std::uint64_t seed)
        : stages_(stages), iterations_(iterations), rng_(seed)
    {
        if (iterations < 2)
            sim::fatal("simulatePipeline: need >= 2 iterations");
        if (stages.prefetch_depth < 1)
            sim::fatal("simulatePipeline: prefetch depth must be >= 1");
        if (stages.host_s < 0 || stages.h2d_s < 0 || stages.gpu_s < 0)
            sim::fatal("simulatePipeline: negative stage time");
    }

    PipelineResult
    run()
    {
        gpu_done_at_.assign(iterations_, -1);
        // Kick off the first host batch; each completion schedules
        // the next stage.
        startHost(0);
        simu_.run();

        PipelineResult res;
        res.makespan_s = sim::toSeconds(simu_.now());
        res.gpu_stall_s = sim::toSeconds(gpu_stall_);
        res.host_block_s = sim::toSeconds(host_block_);
        res.events = simu_.eventsRun();
        // Steady state: regress out the warm-up using the second half
        // of the run.
        int half = iterations_ / 2;
        SimTime mid = gpu_done_at_[half - 1];
        SimTime end = gpu_done_at_[iterations_ - 1];
        res.steady_iteration_s =
            sim::toSeconds(end - mid) / (iterations_ - half);
        return res;
    }

  private:
    double
    jitter()
    {
        return stages_.jitter_sigma > 0.0
                   ? rng_.lognormalNoise(stages_.jitter_sigma)
                   : 1.0;
    }

    void
    startHost(int batch)
    {
        if (batch >= iterations_)
            return;
        // Host may run at most prefetch_depth batches ahead of the
        // GPU's consumption.
        if (batch - gpu_started_ >= stages_.prefetch_depth) {
            host_waiting_batch_ = batch;
            host_block_from_ = simu_.now();
            return;
        }
        SimTime dur = sim::fromSeconds(stages_.host_s * jitter());
        simu_.schedule(dur, [this, batch] {
            ready_for_h2d_.push_back(batch);
            pumpH2d();
            startHost(batch + 1);
        });
    }

    void
    pumpH2d()
    {
        if (h2d_busy_ || ready_for_h2d_.empty())
            return;
        int batch = ready_for_h2d_.front();
        ready_for_h2d_.erase(ready_for_h2d_.begin());
        h2d_busy_ = true;
        SimTime dur = sim::fromSeconds(stages_.h2d_s * jitter());
        simu_.schedule(dur, [this, batch] {
            h2d_busy_ = false;
            ready_for_gpu_.push_back(batch);
            pumpGpu();
            pumpH2d();
        });
    }

    void
    pumpGpu()
    {
        if (gpu_busy_ || ready_for_gpu_.empty())
            return;
        int batch = ready_for_gpu_.front();
        ready_for_gpu_.erase(ready_for_gpu_.begin());
        gpu_busy_ = true;
        if (gpu_idle_since_ >= 0)
            gpu_stall_ += simu_.now() - gpu_idle_since_;
        gpu_started_ = batch + 1;
        // Starting batch N may unblock a host waiting on the queue.
        if (host_waiting_batch_ >= 0) {
            int waiting = host_waiting_batch_;
            host_waiting_batch_ = -1;
            host_block_ += simu_.now() - host_block_from_;
            startHost(waiting);
        }
        SimTime dur = sim::fromSeconds(stages_.gpu_s * jitter());
        simu_.schedule(dur, [this, batch] {
            gpu_busy_ = false;
            gpu_done_at_[batch] = simu_.now();
            gpu_idle_since_ = simu_.now();
            pumpGpu();
        });
    }

    PipelineStages stages_;
    int iterations_;
    sim::Rng rng_;
    sim::Simulation simu_;

    std::vector<int> ready_for_h2d_;
    std::vector<int> ready_for_gpu_;
    std::vector<SimTime> gpu_done_at_;
    bool h2d_busy_ = false;
    bool gpu_busy_ = false;
    int gpu_started_ = 0;        ///< batches the GPU has begun
    int host_waiting_batch_ = -1;
    SimTime host_block_from_ = 0;
    SimTime gpu_idle_since_ = -1;
    SimTime gpu_stall_ = 0;
    SimTime host_block_ = 0;
};

} // namespace

PipelineResult
simulatePipeline(const PipelineStages &stages, int iterations,
                 std::uint64_t seed)
{
    PipelineMachine machine(stages, iterations, seed);
    return machine.run();
}

double
analyticIteration(const PipelineStages &stages)
{
    return std::max({stages.host_s, stages.h2d_s, stages.gpu_s});
}

} // namespace mlps::train
