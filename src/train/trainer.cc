#include "train/trainer.h"

#include <algorithm>
#include <cmath>

#include "hw/kernel_timing.h"
#include "net/allreduce.h"
#include "net/transfer.h"
#include "sim/logger.h"

namespace mlps::train {

namespace {

/** Fraction of host cores the data-loader worker pool can use. */
constexpr double kHostPoolEfficiency = 0.88;

/** Per-GPU driver/runtime busy-polling cost, cores. */
constexpr double kDriverCoresPerGpu = 0.35;

/** cuDNN workspace + CUDA context per replica, bytes. */
constexpr double kGpuRuntimeReserveBytes = 1.3e9;

/** Caching-allocator slack on top of live activations. */
constexpr double kAllocatorSlack = 1.45;

/** Fraction of forward activations retained for the backward pass. */
constexpr double kActivationRetention = 1.0;

PrecisionPolicy
policyFor(hw::Precision p)
{
    PrecisionPolicy pol;
    pol.precision = p;
    return pol;
}

} // namespace

double
overlapFabricFactor(net::CollectiveFabric fabric,
                    const wl::WorkloadSpec &spec)
{
    switch (fabric) {
      case net::CollectiveFabric::NvLink: return 1.0;
      case net::CollectiveFabric::PcieP2p: return 0.8;
      case net::CollectiveFabric::HostStaged:
        return spec.staged_overlap_retention;
    }
    return 1.0;
}

double
gradientBytes(const wl::WorkloadSpec &spec, hw::Precision precision)
{
    double params = spec.graph.totals().param_bytes / 4.0;
    if (spec.fp32_gradients)
        return params * 4.0;
    return params * policyFor(precision).gradientBytesPerParam();
}

net::AllReduceResult
gradientAllReduce(const sys::SystemConfig &system,
                  const wl::WorkloadSpec &spec, hw::Precision precision,
                  int num_gpus)
{
    net::AllReduceParams ar_params;
    ar_params.buckets = spec.gradientBuckets();
    // Shape-aware: exact flat ring on single boxes, hierarchical
    // (2D ring / cross-rack tree) on pod topologies.
    return net::autoHierarchicalAllReduce(
        system.topo, system.gpuSubset(num_gpus),
        gradientBytes(spec, precision), ar_params);
}

net::AllReduceResult
collectiveLoopAllReduce(const sys::SystemConfig &system,
                        const wl::WorkloadSpec &spec, int num_gpus)
{
    return net::autoHierarchicalAllReduce(system.topo,
                                          system.gpuSubset(num_gpus),
                                          spec.collective_bytes);
}

Trainer::Trainer(const sys::SystemConfig &system) : system_(system)
{
    system_.validate();
}

double
Trainer::effectiveBatch(const wl::WorkloadSpec &spec, int num_gpus,
                        const PrecisionPolicy &policy) const
{
    double batch = spec.per_gpu_batch;

    // Global-batch cap (small datasets, Section IV-D): shrink the
    // per-GPU batch so the global batch stays at the cap.
    double cap = spec.convergence.global_batch_cap;
    if (cap > 0.0 && batch * num_gpus > cap)
        batch = cap / num_gpus;

    // HBM capacity: the submission batches target a 16 GiB V100; fit
    // the batch to the actual card by shrinking until it fits.
    double capacity = system_.gpu.hbmCapacityBytes() * 0.97;
    while (batch > 1.0 &&
           hbmFootprintBytes(spec, batch, policy) > capacity)
        batch = std::floor(batch * 0.8);
    return std::max(batch, 1.0);
}

void
Trainer::timeGraphPass(const wl::WorkloadSpec &spec, double batch,
                       hw::Precision precision, bool backward,
                       double derate, double &seconds_out,
                       double &flops_out, double &bytes_out,
                       int &kernels_out, prof::KernelProfiler *profiler,
                       std::uint64_t iterations) const
{
    seconds_out = 0.0;
    flops_out = 0.0;
    bytes_out = 0.0;
    kernels_out = 0;
    for (const wl::Op &op : spec.graph.ops()) {
        hw::KernelProfile k = backward ? op.backwardProfile(batch)
                                       : op.forwardProfile(batch);
        k.tensor_eff_scale *= spec.tc_efficiency;
        hw::KernelTiming t = hw::timeKernel(system_.gpu, k, precision);
        double secs = t.total() * derate;
        seconds_out += secs;
        flops_out += k.flops;
        bytes_out += k.bytes * hw::trafficScaleVsFp32(precision);
        ++kernels_out;
        if (profiler) {
            double measured_bytes = k.bytes *
                                    hw::trafficScaleVsFp32(precision) *
                                    wl::measuredTrafficExpansion(op);
            // Physical cap: a kernel cannot move more DRAM traffic
            // than bandwidth x duration; keeps profiled points on or
            // below the roofline.
            measured_bytes = std::min(
                measured_bytes, secs * system_.gpu.hbmBytesPerSec() *
                                    0.98);
            profiler->record(
                op.name, op.kind,
                backward ? prof::Pass::Backward : prof::Pass::Forward,
                iterations, secs * iterations, k.flops * iterations,
                measured_bytes * iterations);
        }
    }
}

double
Trainer::hbmFootprintBytes(const wl::WorkloadSpec &spec, double batch,
                           const PrecisionPolicy &policy) const
{
    wl::GraphTotals totals = spec.graph.totals();
    double params = totals.param_bytes / 4.0;
    double state = params * policy.stateBytesPerParam();
    double act_elems = totals.activation_bytes / 4.0;
    double activations = act_elems * batch *
                         policy.activationBytesPerElement() *
                         kActivationRetention * kAllocatorSlack;
    double inputs = batch * spec.dataset.input_bytes_per_sample * 2.0;
    return state + activations + inputs + kGpuRuntimeReserveBytes;
}

double
Trainer::dramFootprintBytes(const wl::WorkloadSpec &spec,
                            int num_gpus) const
{
    double staged = spec.dataset.totalBytes() * spec.host.dataset_residency;
    // The staging window grows with consumer count (deeper prefetch
    // queues per worker) but is bounded by the dataset itself.
    staged = std::min(staged * (1.0 + 0.45 * (num_gpus - 1)),
                      spec.dataset.totalBytes());
    double pinned = 2.0 * num_gpus * spec.per_gpu_batch *
                    spec.dataset.input_bytes_per_sample;
    return spec.host.framework_dram_bytes +
           num_gpus * spec.host.per_gpu_dram_bytes + staged + pinned;
}

double
Trainer::inputStagingSeconds(const wl::WorkloadSpec &spec, double batch,
                             int num_gpus) const
{
    double bytes = batch * spec.dataset.input_bytes_per_sample;
    if (bytes <= 0.0)
        return 0.0;
    // One flow per GPU from its host socket; shared switch uplinks
    // contend inside the flow simulator.
    net::FlowSimulator fsim(system_.topo);
    for (int g = 0; g < num_gpus; ++g) {
        net::NodeId gpu = system_.gpu_nodes[g];
        auto cpu = system_.topo.hostCpu(gpu);
        if (!cpu)
            sim::fatal("Trainer: GPU %d has no host CPU", g);
        fsim.addFlow(*cpu, gpu, bytes);
    }
    return fsim.run();
}

TrainResult
Trainer::run(const wl::WorkloadSpec &spec, const RunOptions &opts,
             prof::KernelProfiler *profiler) const
{
    spec.validate();
    if (opts.num_gpus < 1 || opts.num_gpus > system_.num_gpus)
        sim::fatal("Trainer: %d GPUs requested on '%s' (%d present)",
                   opts.num_gpus, system_.name.c_str(),
                   system_.num_gpus);
    switch (spec.mode) {
      case wl::RunMode::Training:
        return runTraining(spec, opts, profiler);
      case wl::RunMode::KernelLoop:
        return runKernelLoop(spec, opts, profiler);
      case wl::RunMode::CollectiveLoop:
        return runCollectiveLoop(spec, opts, profiler);
    }
    sim::panic("Trainer::run: bad RunMode");
}

TrainResult
Trainer::runTraining(const wl::WorkloadSpec &spec, const RunOptions &opts,
                     prof::KernelProfiler *profiler) const
{
    PrecisionPolicy policy = policyFor(opts.precision);
    int n = opts.num_gpus;
    double derate = opts.reference_code ? spec.reference_code_derate : 1.0;

    TrainResult res;
    res.workload = spec.abbrev;
    res.system = system_.name;
    res.num_gpus = n;
    res.precision = opts.precision;
    res.reference_code = opts.reference_code;

    double fitted = effectiveBatch(spec, n, policy);
    IterationBreakdown &it = res.iter;
    it.micro_batches = 1;
    if (opts.grad_accumulation) {
        // Accumulate micro-batches so the optimizer step still sees
        // the submission batch (capped by the convergence rule).
        double asked = spec.per_gpu_batch;
        double cap = spec.convergence.global_batch_cap;
        if (cap > 0.0 && asked * n > cap)
            asked = cap / n;
        if (asked > fitted) {
            it.micro_batches =
                static_cast<int>(std::ceil(asked / fitted));
        }
        res.per_gpu_batch = fitted * it.micro_batches;
    } else {
        res.per_gpu_batch = fitted;
    }
    res.global_batch =
        spec.convergence.usableGlobalBatch(res.per_gpu_batch, n);
    res.steps_per_epoch = spec.dataset.stepsPerEpoch(res.global_batch);
    res.epochs = spec.convergence.epochsAt(res.global_batch);

    std::uint64_t iterations = static_cast<std::uint64_t>(
        std::ceil(res.steps_per_epoch * res.epochs));

    // --- GPU kernels (per micro-batch, repeated micro_batches x) ---
    double fwd_flops = 0.0, fwd_bytes = 0.0;
    double bwd_flops = 0.0, bwd_bytes = 0.0;
    int fwd_kernels = 0, bwd_kernels = 0;
    std::uint64_t kernel_invocations =
        iterations * static_cast<std::uint64_t>(it.micro_batches);
    timeGraphPass(spec, fitted, opts.precision, false, derate,
                  it.fwd_s, fwd_flops, fwd_bytes, fwd_kernels, profiler,
                  kernel_invocations);
    timeGraphPass(spec, fitted, opts.precision, true, derate,
                  it.bwd_s, bwd_flops, bwd_bytes, bwd_kernels, profiler,
                  kernel_invocations);
    it.fwd_s *= it.micro_batches;
    it.bwd_s *= it.micro_batches;
    fwd_flops *= it.micro_batches;
    bwd_flops *= it.micro_batches;
    fwd_bytes *= it.micro_batches;
    bwd_bytes *= it.micro_batches;

    // Optimizer: bandwidth-bound sweep over the parameter state.
    wl::GraphTotals totals = spec.graph.totals();
    double params = totals.param_bytes / 4.0;
    {
        hw::KernelProfile k;
        k.flops = 4.0 * params; // momentum + update math
        k.bytes = params * policy.stateBytesPerParam();
        k.tensor_eligible = false;
        k.compute_eff = wl::computeEfficiency(wl::OpKind::Optimizer);
        k.memory_eff = wl::memoryEfficiency(wl::OpKind::Optimizer);
        hw::KernelTiming t = hw::timeKernel(system_.gpu, k,
                                            hw::Precision::FP32);
        it.optimizer_s = t.total() * derate;
        if (profiler) {
            profiler->record("sgd_update", wl::OpKind::Optimizer,
                             prof::Pass::Optimizer, iterations,
                             it.optimizer_s * iterations,
                             k.flops * iterations, k.bytes * iterations);
        }
    }
    it.kernel_launches = fwd_kernels + bwd_kernels + 1;

    // --- Gradient all-reduce ---
    res.fabric = system_.topo.collectiveFabric(system_.gpuSubset(n));
    net::AllReduceResult ar;
    if (n > 1) {
        double grad_bytes = gradientBytes(spec, opts.precision);
        ar = gradientAllReduce(system_, spec, opts.precision, n);
        it.comm_s = ar.seconds;
        it.reroutes = ar.reroutes;
        double overlap =
            spec.comm_overlap * overlapFabricFactor(res.fabric, spec);
        it.exposed_comm_s = ar.seconds * (1.0 - overlap);
        if (profiler) {
            profiler->record("nccl_all_reduce", wl::OpKind::Elementwise,
                             prof::Pass::Collective, iterations,
                             it.comm_s * iterations, 0.0,
                             grad_bytes * 2.0 * iterations);
        }
    }

    // --- Host pipeline and input staging ---
    double global_samples = res.global_batch;
    double usable_cores = system_.hostCoreGhz() / system_.cpu.base_ghz *
                          kHostPoolEfficiency;
    double parallel_host_s = global_samples *
                             spec.host.cpu_core_us_per_sample * 1e-6 /
                             usable_cores;
    double serial_host_s =
        global_samples * spec.host.serial_cpu_us_per_sample * 1e-6;
    it.host_s = std::max(parallel_host_s, serial_host_s);
    it.h2d_s = inputStagingSeconds(spec, res.per_gpu_batch, n);

    // --- Iteration assembly ---
    it.overhead_s = spec.iteration_overhead_us * 1e-6 *
                    (opts.reference_code ? 1.6 : 1.0);
    double sync = spec.syncPenalty(n);
    it.gpu_busy_s =
        (it.fwd_s + it.bwd_s + it.optimizer_s) * sync +
        it.exposed_comm_s;
    // The input pipeline (host + H2D) runs software-pipelined with
    // compute; whichever stage is longest gates the iteration.
    it.iteration_s = std::max({it.gpu_busy_s + it.overhead_s, it.host_s,
                               it.h2d_s});
    if (n > 1 && res.fabric == net::CollectiveFabric::HostStaged)
        it.iteration_s *= 1.0 + spec.staged_iteration_penalty;

    // --- End-to-end time ---
    res.total_seconds = iterations * it.iteration_s *
                        (1.0 + spec.convergence.eval_overhead);

    // --- Resource usage (Table V) ---
    ResourceUsage &u = res.usage;
    double host_core_s = global_samples *
                         (spec.host.cpu_core_us_per_sample +
                          spec.host.serial_cpu_us_per_sample) * 1e-6;
    double total_cores = static_cast<double>(system_.num_cpus) *
                         system_.cpu.cores;
    u.cpu_util_pct = 100.0 *
        (host_core_s / it.iteration_s + kDriverCoresPerGpu * n) /
        total_cores + spec.host.os_baseline_cpu_pct;
    u.cpu_util_pct = std::min(u.cpu_util_pct, 100.0);

    u.gpu_util_pct_sum = 100.0 * n *
        std::min(1.0, it.gpu_busy_s / it.iteration_s);

    u.hbm_footprint_mb =
        n * hbmFootprintBytes(spec, fitted, policy) / 1e6;
    u.dram_footprint_mb = dramFootprintBytes(spec, n) / 1e6;

    double h2d_bytes = n * res.per_gpu_batch *
                       spec.dataset.input_bytes_per_sample;
    double pcie_bytes = h2d_bytes * 1.04 + ar.pcie_bytes; // +D2H misc
    u.pcie_mbps = pcie_bytes / it.iteration_s * 8.0 / 1e6;
    u.nvlink_mbps = ar.nvlink_bytes / it.iteration_s * 8.0 / 1e6;

    // --- Roofline placement ---
    double kernel_time = it.fwd_s + it.bwd_s + it.optimizer_s;
    if (kernel_time > 0.0) {
        double iter_flops = (fwd_flops + bwd_flops + 4.0 * params) * n;
        double iter_bytes =
            (fwd_bytes + bwd_bytes +
             params * policy.stateBytesPerParam()) * n;
        res.achieved_flops = iter_flops / it.iteration_s;
        res.achieved_bytes_per_sec = iter_bytes / it.iteration_s;
    }
    return res;
}

TrainResult
Trainer::runKernelLoop(const wl::WorkloadSpec &spec,
                       const RunOptions &opts,
                       prof::KernelProfiler *profiler) const
{
    TrainResult res;
    res.workload = spec.abbrev;
    res.system = system_.name;
    res.num_gpus = opts.num_gpus;
    res.precision = opts.precision;
    res.per_gpu_batch = spec.per_gpu_batch;
    res.global_batch = spec.per_gpu_batch;
    res.steps_per_epoch = spec.kernel_iterations;
    res.epochs = 1.0;
    res.fabric = system_.topo.collectiveFabric(
        system_.gpuSubset(opts.num_gpus));

    std::uint64_t iterations =
        static_cast<std::uint64_t>(spec.kernel_iterations);

    IterationBreakdown &it = res.iter;
    double flops = 0.0, bytes = 0.0;
    int kernels = 0;
    // DeepBench times both forward and backward (dgrad/wgrad) kernels.
    double fwd_s = 0.0, bwd_s = 0.0;
    double bwd_flops = 0.0, bwd_bytes = 0.0;
    int bwd_kernels = 0;
    timeGraphPass(spec, spec.per_gpu_batch, opts.precision, false, 1.0,
                  fwd_s, flops, bytes, kernels, profiler, iterations);
    timeGraphPass(spec, spec.per_gpu_batch, opts.precision, true, 1.0,
                  bwd_s, bwd_flops, bwd_bytes, bwd_kernels, profiler,
                  iterations);
    it.fwd_s = fwd_s;
    it.bwd_s = bwd_s;
    it.kernel_launches = kernels + bwd_kernels;
    it.overhead_s = spec.iteration_overhead_us * 1e-6;
    it.gpu_busy_s = fwd_s + bwd_s;
    it.host_s = spec.host.cpu_core_us_per_sample * 1e-6;
    it.iteration_s = it.gpu_busy_s + it.overhead_s;
    res.total_seconds = iterations * it.iteration_s;

    ResourceUsage &u = res.usage;
    double total_cores = static_cast<double>(system_.num_cpus) *
                         system_.cpu.cores;
    u.cpu_util_pct = 100.0 * kDriverCoresPerGpu / total_cores +
                     spec.host.os_baseline_cpu_pct +
                     100.0 * it.host_s / it.iteration_s / total_cores;
    u.gpu_util_pct_sum =
        100.0 * std::min(1.0, it.gpu_busy_s / it.iteration_s);
    u.hbm_footprint_mb = (spec.dataset.raw_bytes_per_sample +
                          kGpuRuntimeReserveBytes * 0.3) / 1e6;
    u.dram_footprint_mb = (spec.host.framework_dram_bytes +
                           spec.host.per_gpu_dram_bytes) / 1e6;
    u.pcie_mbps = 13.0; // housekeeping traffic only
    u.nvlink_mbps = 0.0;

    res.achieved_flops = (flops + bwd_flops) / it.gpu_busy_s;
    res.achieved_bytes_per_sec = (bytes + bwd_bytes) / it.gpu_busy_s;
    return res;
}

TrainResult
Trainer::runCollectiveLoop(const wl::WorkloadSpec &spec,
                           const RunOptions &opts,
                           prof::KernelProfiler *profiler) const
{
    TrainResult res;
    res.workload = spec.abbrev;
    res.system = system_.name;
    res.num_gpus = opts.num_gpus;
    res.precision = opts.precision;
    res.per_gpu_batch = 1.0;
    res.global_batch = 1.0;
    res.steps_per_epoch = spec.collective_iterations;
    res.epochs = 1.0;

    int n = opts.num_gpus;
    res.fabric = system_.topo.collectiveFabric(system_.gpuSubset(n));

    IterationBreakdown &it = res.iter;
    net::AllReduceResult ar;
    if (n > 1) {
        ar = collectiveLoopAllReduce(system_, spec, n);
        it.comm_s = ar.seconds;
        it.exposed_comm_s = ar.seconds;
        it.reroutes = ar.reroutes;
    } else {
        // Single GPU: a local reduction kernel only.
        hw::KernelProfile k;
        k.flops = spec.collective_bytes / 4.0;
        k.bytes = 2.0 * spec.collective_bytes;
        k.compute_eff = wl::computeEfficiency(wl::OpKind::Elementwise);
        k.memory_eff = wl::memoryEfficiency(wl::OpKind::Elementwise);
        it.comm_s = hw::timeKernel(system_.gpu, k,
                                   hw::Precision::FP32).total();
        it.exposed_comm_s = it.comm_s;
    }
    std::uint64_t iterations =
        static_cast<std::uint64_t>(spec.collective_iterations);
    if (profiler) {
        profiler->record("nccl_all_reduce", wl::OpKind::Elementwise,
                         prof::Pass::Collective, iterations,
                         it.comm_s * iterations, 0.0,
                         spec.collective_bytes * 2.0 * iterations);
    }

    it.overhead_s = spec.iteration_overhead_us * 1e-6;
    it.gpu_busy_s = it.comm_s;
    it.iteration_s = it.comm_s + it.overhead_s;
    res.total_seconds = iterations * it.iteration_s;

    ResourceUsage &u = res.usage;
    double total_cores = static_cast<double>(system_.num_cpus) *
                         system_.cpu.cores;
    u.cpu_util_pct = 100.0 * kDriverCoresPerGpu * n / total_cores +
                     spec.host.os_baseline_cpu_pct;
    u.gpu_util_pct_sum = 100.0 * n *
        std::min(1.0, it.gpu_busy_s / it.iteration_s);
    u.hbm_footprint_mb =
        n * (spec.collective_bytes * 2.0 + 0.45e9) / 1e6;
    u.dram_footprint_mb = (spec.host.framework_dram_bytes +
                           n * spec.host.per_gpu_dram_bytes * 0.3) / 1e6;
    u.pcie_mbps = (ar.pcie_bytes / it.iteration_s) * 8.0 / 1e6 + 27.0;
    u.nvlink_mbps = (ar.nvlink_bytes / it.iteration_s) * 8.0 / 1e6;

    res.achieved_flops = 0.0;
    res.achieved_bytes_per_sec =
        spec.collective_bytes * 2.0 / it.iteration_s;
    return res;
}

} // namespace mlps::train
