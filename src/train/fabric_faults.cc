#include "train/fabric_faults.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <sstream>

#include "obs/registry.h"
#include "obs/span.h"
#include "sim/logger.h"

namespace mlps::train {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Degraded fabric states actually modeled (memoization misses). */
sim::Counter &
stateModels()
{
    static sim::Counter c{"fabric.state_models"};
    static auto reg = obs::MetricRegistry::global().registerCounter(
        "train.fabric.state_models", &c);
    return c;
}

/** Trace replays, counting horizon-regeneration retries. */
sim::Counter &
traceReplays()
{
    static sim::Counter c{"fabric.replays"};
    static auto reg = obs::MetricRegistry::global().registerCounter(
        "train.fabric.replays", &c);
    return c;
}

/** Non-fatal connectivity probe over up edges. */
bool
fullyConnectedUp(const net::Topology &topo)
{
    if (topo.nodeCount() == 0)
        return false;
    std::vector<bool> seen(topo.nodeCount(), false);
    std::deque<net::NodeId> frontier;
    frontier.push_back(0);
    seen[0] = true;
    int reached = 1;
    while (!frontier.empty()) {
        net::NodeId n = frontier.front();
        frontier.pop_front();
        for (int e = 0; e < topo.edgeCount(); ++e) {
            if (topo.linkDown(e))
                continue;
            auto [a, b] = topo.endpoints(e);
            net::NodeId other;
            if (a == n)
                other = b;
            else if (b == n)
                other = a;
            else
                continue;
            if (!seen[other]) {
                seen[other] = true;
                ++reached;
                frontier.push_back(other);
            }
        }
    }
    return reached == topo.nodeCount();
}

/** Canonical key of a degraded fabric state (for memoization). */
std::string
stateKey(const net::Topology &topo, double throttle)
{
    std::ostringstream os;
    for (int e = 0; e < topo.edgeCount(); ++e) {
        if (topo.linkDown(e))
            os << e << "d;";
        else if (topo.linkBandwidthScale(e) != 1.0)
            os << e << "s" << topo.linkBandwidthScale(e) << ";";
    }
    if (throttle != 1.0)
        os << "t" << throttle;
    return os.str();
}

/** Modeled progress rate and reroute count of one fabric state. */
struct StateModel {
    double rate = 1.0; ///< healthy-seconds of work per wall-second
    int reroutes = 0;
};

} // namespace

LinkFaultedTrainResult
applyLinkFaultTrace(const sys::SystemConfig &system,
                    const wl::WorkloadSpec &spec, const RunOptions &opts,
                    const fault::LinkFaultModel &faults)
{
    LinkFaultedTrainResult out;

    sys::SystemConfig healthy = system;
    healthy.topo.resetLinkState();
    out.base = Trainer(healthy).run(spec, opts);
    const double work = out.base.total_seconds;
    const double base_iter = out.base.iter.iteration_s;
    if (work <= 0.0) {
        out.expected_seconds = 0.0;
        return out;
    }

    // Memoized per-state Trainer re-runs: a flapping link revisits
    // the same degraded state many times but models it once.
    std::map<std::string, StateModel> models;
    models[""] = StateModel{1.0, 0};

    auto modelState = [&](sys::SystemConfig &scratch,
                          double throttle) -> StateModel {
        std::string key = stateKey(scratch.topo, throttle);
        auto it = models.find(key);
        if (it != models.end())
            return it->second;
        stateModels().add(1.0);
        obs::Span span("train.fabric", "model_state");
        StateModel m;
        if (!fullyConnectedUp(scratch.topo)) {
            // The fault stranded part of the machine: no route, no
            // progress until the window heals.
            m.rate = 0.0;
        } else {
            TrainResult degraded = Trainer(scratch).run(spec, opts);
            double iter = degraded.iter.iteration_s;
            // A throttled GPU paces the whole data-parallel step.
            if (throttle > 0.0 && throttle < 1.0)
                iter /= throttle;
            m.rate = iter > 0.0 ? base_iter / iter : 0.0;
            m.reroutes = degraded.iter.reroutes;
        }
        models.emplace(key, m);
        return m;
    };

    // Replay, regenerating over a longer horizon whenever degradation
    // pushes completion past the trace's coverage (regeneration is
    // prefix-stable, so the replay stays deterministic).
    double horizon = std::max(2.0 * work, work + 3600.0);
    for (int attempt = 0; attempt < 24; ++attempt) {
        traceReplays().add(1.0);
        obs::Span replay_span("train.fabric",
                              "replay attempt=" + std::to_string(attempt));
        auto trace = faults.generate(horizon, healthy.topo);

        std::vector<double> bounds;
        for (const auto &ev : trace) {
            bounds.push_back(ev.start_s);
            if (ev.duration_s > 0.0)
                bounds.push_back(ev.start_s + ev.duration_s);
        }
        std::sort(bounds.begin(), bounds.end());

        out.topology_epochs = 0;
        out.max_reroutes = 0;
        out.stalls = 0;
        out.degradations = 0;

        sys::SystemConfig scratch = healthy;
        std::string prev_key;
        double t = 0.0, done = 0.0;
        StateModel cur = models[""];
        std::size_t bi = 0;
        bool finished = false;

        while (!finished) {
            double t_finish =
                cur.rate > 0.0 ? t + (work - done) / cur.rate : kInf;
            double t_bound =
                bi < bounds.size() ? std::max(bounds[bi], t) : kInf;
            if (t_finish == kInf && t_bound == kInf)
                sim::fatal("applyLinkFaultTrace: run stalls forever "
                           "(fabric never heals)");
            double t_next = std::min(t_finish, t_bound);
            done += (t_next - t) * cur.rate;
            t = t_next;
            if (t_next == t_finish && t_finish <= t_bound) {
                finished = true;
                break;
            }

            double bt = bounds[bi++];
            // Coalesce simultaneous boundaries into one state change.
            while (bi < bounds.size() && bounds[bi] == bt)
                ++bi;
            double throttle =
                fault::applyLinkFaults(scratch.topo, trace, bt);
            std::string key = stateKey(scratch.topo, throttle);
            if (key != prev_key) {
                if (!key.empty())
                    ++out.topology_epochs;
                prev_key = key;
                bool was_stalled = cur.rate == 0.0;
                cur = modelState(scratch, throttle);
                out.max_reroutes =
                    std::max(out.max_reroutes, cur.reroutes);
                if (cur.rate == 0.0 && !was_stalled)
                    ++out.stalls;
            }
        }

        if (t <= horizon) {
            out.expected_seconds = t;
            for (const auto &ev : trace) {
                if (ev.start_s < t)
                    ++out.degradations;
            }
            out.degraded_overhead_s = std::max(0.0, t - work);
            return out;
        }
        horizon *= 2.0;
    }
    sim::fatal("applyLinkFaultTrace: run never completes under this "
               "link-fault trace (MTTF too small for %g s of work?)",
               work);
}

} // namespace mlps::train
