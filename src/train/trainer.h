/**
 * @file
 * The data-parallel training engine.
 *
 * Trainer models one workload running on one system configuration:
 * per-kernel roofline timing on the GPUs, software-pipelined input
 * staging over PCIe (flow-simulated, so shared uplinks contend), the
 * host preprocessing pipeline, and ring all-reduce gradient exchange
 * with backward-pass overlap. It produces the steady-state iteration
 * breakdown, Table V resource usage, and the end-to-end time to the
 * MLPerf quality target.
 *
 * Thread contract: run() is const and touches no mutable shared
 * state — all working state lives on the stack of the call (the flow
 * simulator is constructed per run). Concurrent run() calls on one
 * Trainer, or on distinct Trainers, are therefore safe PROVIDED each
 * call gets its own KernelProfiler (the profiler itself is
 * unsynchronized; see prof/kernel_profiler.h). The exec::Engine
 * relies on this contract to evaluate batches in parallel.
 */

#ifndef MLPSIM_TRAIN_TRAINER_H
#define MLPSIM_TRAIN_TRAINER_H

#include "net/allreduce.h"
#include "prof/kernel_profiler.h"
#include "sys/system_config.h"
#include "train/precision_policy.h"
#include "train/training_job.h"
#include "wl/workload.h"

namespace mlps::train {

/** Training engine bound to one system configuration. */
class Trainer
{
  public:
    /** Binds to a copy of the configuration (safe with temporaries). */
    explicit Trainer(const sys::SystemConfig &system);

    /**
     * Model a full run of a workload.
     *
     * @param spec workload to run.
     * @param opts GPU count / precision / reference-code selection.
     * @param profiler optional kernel profiler; receives one record
     *        per kernel class with whole-run totals.
     */
    TrainResult run(const wl::WorkloadSpec &spec, const RunOptions &opts,
                    prof::KernelProfiler *profiler = nullptr) const;

    /** The bound system. */
    const sys::SystemConfig &system() const { return system_; }

    /**
     * The per-GPU batch a run would use: the submission batch, shrunk
     * when the global-batch cap or HBM capacity binds.
     */
    double effectiveBatch(const wl::WorkloadSpec &spec, int num_gpus,
                          const PrecisionPolicy &policy) const;

  private:
    TrainResult runTraining(const wl::WorkloadSpec &spec,
                            const RunOptions &opts,
                            prof::KernelProfiler *profiler) const;
    TrainResult runKernelLoop(const wl::WorkloadSpec &spec,
                              const RunOptions &opts,
                              prof::KernelProfiler *profiler) const;
    TrainResult runCollectiveLoop(const wl::WorkloadSpec &spec,
                                  const RunOptions &opts,
                                  prof::KernelProfiler *profiler) const;

    /** Sum kernel timings of one pass over the graph at a batch size. */
    void timeGraphPass(const wl::WorkloadSpec &spec, double batch,
                       hw::Precision precision, bool backward,
                       double derate, double &seconds_out,
                       double &flops_out, double &bytes_out,
                       int &kernels_out,
                       prof::KernelProfiler *profiler,
                       std::uint64_t iterations) const;

    /** HBM footprint of one replica, bytes. */
    double hbmFootprintBytes(const wl::WorkloadSpec &spec, double batch,
                             const PrecisionPolicy &policy) const;

    /** Host DRAM footprint of the whole run, bytes. */
    double dramFootprintBytes(const wl::WorkloadSpec &spec,
                              int num_gpus) const;

    /** Input staging time for one iteration over PCIe, seconds. */
    double inputStagingSeconds(const wl::WorkloadSpec &spec, double batch,
                               int num_gpus) const;

    sys::SystemConfig system_;
};

/**
 * How well comm/compute overlap survives on a fabric: staged
 * transports involve the CPU and the shared PCIe links, fighting the
 * backward pass they are supposed to hide under. The staged retention
 * is workload-specific (WorkloadSpec::staged_overlap_retention).
 */
double overlapFabricFactor(net::CollectiveFabric fabric,
                           const wl::WorkloadSpec &spec);

/** Gradient payload one replica contributes to the all-reduce, bytes. */
double gradientBytes(const wl::WorkloadSpec &spec,
                     hw::Precision precision);

/**
 * The exact gradient all-reduce runTraining models at num_gpus
 * replicas: same payload, same bucket count, same shape-aware
 * hierarchical schedule. Shared with the attribution layer
 * (obs/attrib) so its per-tier byte split cannot drift from the
 * trainer's. Requires num_gpus > 1.
 */
net::AllReduceResult gradientAllReduce(const sys::SystemConfig &system,
                                       const wl::WorkloadSpec &spec,
                                       hw::Precision precision,
                                       int num_gpus);

/**
 * The collective-loop all-reduce (RunMode::CollectiveLoop) at
 * num_gpus > 1 participants: default schedule over the workload's
 * collective payload.
 */
net::AllReduceResult
collectiveLoopAllReduce(const sys::SystemConfig &system,
                        const wl::WorkloadSpec &spec, int num_gpus);

} // namespace mlps::train

#endif // MLPSIM_TRAIN_TRAINER_H
