/**
 * @file
 * Multi-node data-parallel training: extends the single-machine
 * Trainer with a hierarchical all-reduce (intra-node ring over the
 * machine fabric, inter-node ring over the NICs) and cluster-wide
 * batch rules. Answers the question the paper's Section IV-D raises
 * for data centers: how far does each workload's scaling carry past
 * one chassis?
 */

#ifndef MLPSIM_TRAIN_MULTINODE_H
#define MLPSIM_TRAIN_MULTINODE_H

#include "sys/cluster.h"
#include "train/trainer.h"

namespace mlps::train {

/** Result of one multi-node run. */
struct MultiNodeResult {
    std::string workload;
    std::string cluster;
    int num_nodes = 1;
    int gpus_per_node = 1;
    double per_gpu_batch = 0.0;
    double global_batch = 0.0;
    double epochs = 0.0;
    double steps_per_epoch = 0.0;

    /** Steady-state iteration, seconds. */
    double iteration_s = 0.0;
    /** Intra-node all-reduce portion, seconds. */
    double intra_comm_s = 0.0;
    /** Inter-node (NIC) all-reduce portion, seconds. */
    double inter_comm_s = 0.0;
    /** End-to-end time to quality, seconds. */
    double total_seconds = 0.0;

    double totalMinutes() const { return total_seconds / 60.0; }
};

/**
 * Model a data-parallel run across a cluster.
 *
 * @param cluster homogeneous cluster description.
 * @param spec    workload.
 * @param nodes   nodes to use (<= cluster.num_nodes).
 * @param precision numeric regime.
 */
MultiNodeResult runMultiNode(const sys::ClusterConfig &cluster,
                             const wl::WorkloadSpec &spec, int nodes,
                             hw::Precision precision =
                                 hw::Precision::Mixed);

/**
 * Inter-node ring all-reduce time over the NICs: each node exchanges
 * 2*(M-1)/M of the payload through its NIC, bucketed like the
 * intra-node collective.
 */
double interNodeRingSeconds(const sys::NicSpec &nic, int nodes,
                            double bytes, int buckets);

} // namespace mlps::train

#endif // MLPSIM_TRAIN_MULTINODE_H
