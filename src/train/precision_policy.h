/**
 * @file
 * Precision policy: how a training run's numeric regime affects
 * gradient exchange volume and on-device memory.
 *
 * Mixed precision (paper Figure 3) keeps fp16 working weights and
 * activations plus fp32 master weights; gradients are exchanged in
 * fp16, halving the all-reduce payload.
 */

#ifndef MLPSIM_TRAIN_PRECISION_POLICY_H
#define MLPSIM_TRAIN_PRECISION_POLICY_H

#include "hw/precision.h"

namespace mlps::train {

/** Numeric regime of a training run. */
struct PrecisionPolicy {
    hw::Precision precision = hw::Precision::FP32;

    /** Bytes per parameter exchanged in the gradient all-reduce. */
    double gradientBytesPerParam() const;

    /**
     * Bytes per parameter resident on each GPU: working weights,
     * master copy (mixed), SGD momentum, and gradient buffer.
     */
    double stateBytesPerParam() const;

    /** Bytes per activation element saved for the backward pass. */
    double activationBytesPerElement() const;
};

/** The fp32 baseline regime. */
PrecisionPolicy fp32Policy();

/** The AMP/tensor-core mixed regime. */
PrecisionPolicy mixedPolicy();

} // namespace mlps::train

#endif // MLPSIM_TRAIN_PRECISION_POLICY_H
