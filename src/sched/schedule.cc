#include "sched/schedule.h"

#include <algorithm>
#include <map>

#include "sim/logger.h"

namespace mlps::sched {

double
Schedule::makespan() const
{
    double m = 0.0;
    for (const auto &p : placements)
        m = std::max(m, p.end_s);
    return m;
}

double
Schedule::utilization() const
{
    double span = makespan();
    if (span <= 0.0 || num_gpus <= 0)
        return 0.0;
    double busy = 0.0;
    for (const auto &p : placements)
        busy += p.duration() * p.width();
    return busy / (span * num_gpus);
}

void
Schedule::validate(const std::vector<JobSpec> &jobs) const
{
    std::map<std::string, int> seen;
    for (const auto &p : placements) {
        if (p.end_s < p.start_s)
            sim::fatal("Schedule: placement '%s' ends before it starts",
                       p.job.c_str());
        if (p.gpus.empty())
            sim::fatal("Schedule: placement '%s' uses no GPUs",
                       p.job.c_str());
        for (int g : p.gpus) {
            if (g < 0 || g >= num_gpus)
                sim::fatal("Schedule: placement '%s' uses GPU %d of %d",
                           p.job.c_str(), g, num_gpus);
        }
        ++seen[p.job];
    }
    for (const auto &j : jobs) {
        auto it = seen.find(j.name);
        if (it == seen.end() || it->second != 1)
            sim::fatal("Schedule: job '%s' scheduled %d times",
                       j.name.c_str(),
                       it == seen.end() ? 0 : it->second);
    }
    // Pairwise overlap check per GPU.
    for (std::size_t i = 0; i < placements.size(); ++i) {
        for (std::size_t j = i + 1; j < placements.size(); ++j) {
            const auto &a = placements[i];
            const auto &b = placements[j];
            bool share_gpu = false;
            for (int g : a.gpus) {
                if (std::find(b.gpus.begin(), b.gpus.end(), g) !=
                    b.gpus.end()) {
                    share_gpu = true;
                    break;
                }
            }
            if (!share_gpu)
                continue;
            bool disjoint_time =
                a.end_s <= b.start_s + 1e-9 ||
                b.end_s <= a.start_s + 1e-9;
            if (!disjoint_time)
                sim::fatal("Schedule: '%s' and '%s' overlap on a GPU",
                           a.job.c_str(), b.job.c_str());
        }
    }
}

} // namespace mlps::sched
