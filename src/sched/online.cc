#include "sched/online.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>

#include "sim/logger.h"

namespace mlps::sched {

std::string
toString(OnlinePolicy policy)
{
    switch (policy) {
      case OnlinePolicy::FifoFullWidth: return "fifo-full-width";
      case OnlinePolicy::FifoBestWidth: return "fifo-best-width";
      case OnlinePolicy::Backfill: return "backfill";
    }
    sim::panic("toString: bad OnlinePolicy %d",
               static_cast<int>(policy));
}

namespace {

/** Widest width keeping parallel efficiency >= 0.75. */
int
bestWidth(const JobSpec &job, int gpus)
{
    int best = 1;
    for (int w = 2; w <= gpus; w *= 2) {
        if (job.speedupAt(w) / w >= 0.75)
            best = w;
    }
    return best;
}

struct MachineState {
    std::vector<double> free_at; ///< per-GPU availability time

    explicit MachineState(int gpus) : free_at(gpus, 0.0) {}

    /** Indices of GPUs free at time t, earliest-free first. */
    std::vector<int>
    freeGpus(double t) const
    {
        std::vector<int> idx;
        for (int g = 0; g < static_cast<int>(free_at.size()); ++g) {
            if (free_at[g] <= t + 1e-12)
                idx.push_back(g);
        }
        return idx;
    }

    /** Time at which at least `width` GPUs are simultaneously free. */
    double
    availableAt(int width) const
    {
        std::vector<double> sorted = free_at;
        std::sort(sorted.begin(), sorted.end());
        return sorted[width - 1];
    }
};

struct PendingJob {
    const OnlineJob *job;
    int index;
};

} // namespace

OnlineMetrics
simulateOnline(const std::vector<OnlineJob> &jobs, int gpus,
               OnlinePolicy policy)
{
    if (jobs.empty())
        sim::fatal("simulateOnline: no jobs");
    if (gpus < 1 || (gpus & (gpus - 1)) != 0)
        sim::fatal("simulateOnline: GPU count %d must be a power of 2",
                   gpus);
    for (const auto &j : jobs) {
        if (j.arrival_s < 0.0)
            sim::fatal("simulateOnline: negative arrival for '%s'",
                       j.profile.name.c_str());
        for (int w = 1; w <= gpus; w *= 2) {
            if (!j.profile.supportsWidth(w))
                sim::fatal("simulateOnline: '%s' missing width %d",
                           j.profile.name.c_str(), w);
        }
    }

    // Arrival order (stable for ties).
    std::vector<int> order(jobs.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return jobs[a].arrival_s < jobs[b].arrival_s;
    });

    MachineState machine(gpus);
    std::deque<int> queue; // indices into jobs
    std::size_t next_arrival = 0;
    double now = 0.0;

    OnlineMetrics res;
    res.schedule.num_gpus = gpus;
    std::vector<double> start_time(jobs.size(), -1.0);
    std::vector<double> end_time(jobs.size(), -1.0);

    auto place = [&](int ji, int width, double t) {
        auto free = machine.freeGpus(t);
        std::vector<int> chosen(free.begin(), free.begin() + width);
        Placement p;
        p.job = jobs[ji].profile.name + "#" + std::to_string(ji);
        p.gpus = chosen;
        p.start_s = t;
        p.end_s = t + jobs[ji].profile.timeAt(width);
        for (int g : chosen)
            machine.free_at[g] = p.end_s;
        start_time[ji] = t;
        end_time[ji] = p.end_s;
        res.schedule.placements.push_back(std::move(p));
    };

    auto desiredWidth = [&](int ji) {
        return policy == OnlinePolicy::FifoFullWidth
                   ? gpus
                   : bestWidth(jobs[ji].profile, gpus);
    };

    // Event loop: advance `now` to the next arrival or GPU release,
    // then dispatch whatever the policy allows.
    std::size_t done = 0;
    while (done < jobs.size()) {
        // Admit arrivals up to now.
        while (next_arrival < order.size() &&
               jobs[order[next_arrival]].arrival_s <= now + 1e-12) {
            queue.push_back(order[next_arrival]);
            ++next_arrival;
        }

        // Dispatch loop at the current instant.
        bool dispatched = true;
        while (dispatched && !queue.empty()) {
            dispatched = false;
            int head = queue.front();
            int head_width = desiredWidth(head);
            auto free = machine.freeGpus(now);
            if (static_cast<int>(free.size()) >= head_width) {
                queue.pop_front();
                place(head, head_width, now);
                ++done;
                dispatched = true;
                continue;
            }
            if (policy == OnlinePolicy::Backfill && !free.empty()) {
                // Head reserves `head_width` GPUs at the earliest
                // time they co-exist; a later job may use currently
                // free GPUs if it finishes by then.
                double reservation = machine.availableAt(head_width);
                // Largest power-of-two width the free set can host.
                int free_pow2 = 1;
                while (free_pow2 * 2 <=
                       static_cast<int>(free.size()))
                    free_pow2 *= 2;
                for (std::size_t qi = 1; qi < queue.size(); ++qi) {
                    int cand = queue[qi];
                    int w = std::min(desiredWidth(cand), free_pow2);
                    if (now + jobs[cand].profile.timeAt(w) <=
                        reservation + 1e-9) {
                        queue.erase(queue.begin() + qi);
                        place(cand, w, now);
                        ++done;
                        dispatched = true;
                        break;
                    }
                }
            }
        }

        if (done == jobs.size())
            break;

        // Advance to the next interesting instant.
        double next_t = std::numeric_limits<double>::infinity();
        if (next_arrival < order.size())
            next_t = jobs[order[next_arrival]].arrival_s;
        if (!queue.empty()) {
            for (double t : machine.free_at) {
                if (t > now + 1e-12)
                    next_t = std::min(next_t, t);
            }
        }
        if (!std::isfinite(next_t))
            sim::panic("simulateOnline: stalled with %zu jobs queued",
                       queue.size());
        now = next_t;
    }

    // Metrics.
    double wait_sum = 0.0, turn_sum = 0.0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        double wait = start_time[i] - jobs[i].arrival_s;
        wait_sum += wait;
        res.max_wait_s = std::max(res.max_wait_s, wait);
        turn_sum += end_time[i] - jobs[i].arrival_s;
        res.makespan_s = std::max(res.makespan_s, end_time[i]);
    }
    res.avg_wait_s = wait_sum / jobs.size();
    res.avg_turnaround_s = turn_sum / jobs.size();
    double busy = 0.0;
    for (const auto &p : res.schedule.placements)
        busy += p.duration() * p.width();
    res.utilization =
        res.makespan_s > 0.0 ? busy / (res.makespan_s * gpus) : 0.0;
    return res;
}

std::vector<OnlineJob>
poissonJobStream(const std::vector<JobSpec> &catalogue, int count,
                 double mean_interarrival_s, std::uint64_t seed)
{
    if (catalogue.empty())
        sim::fatal("poissonJobStream: empty catalogue");
    if (count < 1 || mean_interarrival_s <= 0.0)
        sim::fatal("poissonJobStream: bad stream parameters");
    sim::Rng rng(seed);
    std::vector<OnlineJob> jobs;
    double t = 0.0;
    for (int i = 0; i < count; ++i) {
        OnlineJob j;
        j.profile = catalogue[rng.below(catalogue.size())];
        j.profile.name += "_a" + std::to_string(i);
        j.arrival_s = t;
        jobs.push_back(std::move(j));
        // Exponential inter-arrival.
        double u = std::max(rng.uniform(), 1e-12);
        t += -mean_interarrival_s * std::log(u);
    }
    return jobs;
}

} // namespace mlps::sched
