#include "sched/online.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>

#include "sim/logger.h"

namespace mlps::sched {

std::string
toString(OnlinePolicy policy)
{
    switch (policy) {
      case OnlinePolicy::FifoFullWidth: return "fifo-full-width";
      case OnlinePolicy::FifoBestWidth: return "fifo-best-width";
      case OnlinePolicy::Backfill: return "backfill";
    }
    sim::panic("toString: bad OnlinePolicy %d",
               static_cast<int>(policy));
}

namespace {

/** Widest width keeping parallel efficiency >= 0.75. */
int
bestWidth(const JobSpec &job, int gpus)
{
    int best = 1;
    for (int w = 2; w <= gpus; w *= 2) {
        if (job.speedupAt(w) / w >= 0.75)
            best = w;
    }
    return best;
}

struct MachineState {
    std::vector<double> free_at; ///< per-GPU availability time

    explicit MachineState(int gpus) : free_at(gpus, 0.0) {}

    /** Indices of GPUs free at time t, earliest-free first. */
    std::vector<int>
    freeGpus(double t) const
    {
        std::vector<int> idx;
        for (int g = 0; g < static_cast<int>(free_at.size()); ++g) {
            if (free_at[g] <= t + 1e-12)
                idx.push_back(g);
        }
        return idx;
    }

    /** Time at which at least `width` GPUs are simultaneously free. */
    double
    availableAt(int width) const
    {
        std::vector<double> sorted = free_at;
        std::sort(sorted.begin(), sorted.end());
        return sorted[width - 1];
    }
};

struct PendingJob {
    const OnlineJob *job;
    int index;
};

} // namespace

OnlineMetrics
simulateOnline(const std::vector<OnlineJob> &jobs, int gpus,
               OnlinePolicy policy)
{
    if (jobs.empty())
        sim::fatal("simulateOnline: no jobs");
    if (gpus < 1 || (gpus & (gpus - 1)) != 0)
        sim::fatal("simulateOnline: GPU count %d must be a power of 2",
                   gpus);
    for (const auto &j : jobs) {
        if (j.arrival_s < 0.0)
            sim::fatal("simulateOnline: negative arrival for '%s'",
                       j.profile.name.c_str());
        for (int w = 1; w <= gpus; w *= 2) {
            if (!j.profile.supportsWidth(w))
                sim::fatal("simulateOnline: '%s' missing width %d",
                           j.profile.name.c_str(), w);
        }
    }

    // Arrival order (stable for ties).
    std::vector<int> order(jobs.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return jobs[a].arrival_s < jobs[b].arrival_s;
    });

    MachineState machine(gpus);
    std::deque<int> queue; // indices into jobs
    std::size_t next_arrival = 0;
    double now = 0.0;

    OnlineMetrics res;
    res.schedule.num_gpus = gpus;
    std::vector<double> start_time(jobs.size(), -1.0);
    std::vector<double> end_time(jobs.size(), -1.0);

    auto place = [&](int ji, int width, double t) {
        auto free = machine.freeGpus(t);
        std::vector<int> chosen(free.begin(), free.begin() + width);
        Placement p;
        p.job = jobs[ji].profile.name + "#" + std::to_string(ji);
        p.gpus = chosen;
        p.start_s = t;
        p.end_s = t + jobs[ji].profile.timeAt(width);
        for (int g : chosen)
            machine.free_at[g] = p.end_s;
        start_time[ji] = t;
        end_time[ji] = p.end_s;
        res.schedule.placements.push_back(std::move(p));
    };

    auto desiredWidth = [&](int ji) {
        return policy == OnlinePolicy::FifoFullWidth
                   ? gpus
                   : bestWidth(jobs[ji].profile, gpus);
    };

    // Event loop: advance `now` to the next arrival or GPU release,
    // then dispatch whatever the policy allows.
    std::size_t done = 0;
    while (done < jobs.size()) {
        // Admit arrivals up to now.
        while (next_arrival < order.size() &&
               jobs[order[next_arrival]].arrival_s <= now + 1e-12) {
            queue.push_back(order[next_arrival]);
            ++next_arrival;
        }

        // Dispatch loop at the current instant.
        bool dispatched = true;
        while (dispatched && !queue.empty()) {
            dispatched = false;
            int head = queue.front();
            int head_width = desiredWidth(head);
            auto free = machine.freeGpus(now);
            if (static_cast<int>(free.size()) >= head_width) {
                queue.pop_front();
                place(head, head_width, now);
                ++done;
                dispatched = true;
                continue;
            }
            if (policy == OnlinePolicy::Backfill && !free.empty()) {
                // Head reserves `head_width` GPUs at the earliest
                // time they co-exist; a later job may use currently
                // free GPUs if it finishes by then.
                double reservation = machine.availableAt(head_width);
                // Largest power-of-two width the free set can host.
                int free_pow2 = 1;
                while (free_pow2 * 2 <=
                       static_cast<int>(free.size()))
                    free_pow2 *= 2;
                for (std::size_t qi = 1; qi < queue.size(); ++qi) {
                    int cand = queue[qi];
                    int w = std::min(desiredWidth(cand), free_pow2);
                    if (now + jobs[cand].profile.timeAt(w) <=
                        reservation + 1e-9) {
                        queue.erase(queue.begin() + qi);
                        place(cand, w, now);
                        ++done;
                        dispatched = true;
                        break;
                    }
                }
            }
        }

        if (done == jobs.size())
            break;

        // Advance to the next interesting instant.
        double next_t = std::numeric_limits<double>::infinity();
        if (next_arrival < order.size())
            next_t = jobs[order[next_arrival]].arrival_s;
        if (!queue.empty()) {
            for (double t : machine.free_at) {
                if (t > now + 1e-12)
                    next_t = std::min(next_t, t);
            }
        }
        if (!std::isfinite(next_t))
            sim::panic("simulateOnline: stalled with %zu jobs queued",
                       queue.size());
        now = next_t;
    }

    // Metrics.
    double wait_sum = 0.0, turn_sum = 0.0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        double wait = start_time[i] - jobs[i].arrival_s;
        wait_sum += wait;
        res.max_wait_s = std::max(res.max_wait_s, wait);
        turn_sum += end_time[i] - jobs[i].arrival_s;
        res.makespan_s = std::max(res.makespan_s, end_time[i]);
    }
    res.avg_wait_s = wait_sum / jobs.size();
    res.avg_turnaround_s = turn_sum / jobs.size();
    double busy = 0.0;
    for (const auto &p : res.schedule.placements)
        busy += p.duration() * p.width();
    res.utilization =
        res.makespan_s > 0.0 ? busy / (res.makespan_s * gpus) : 0.0;
    return res;
}

std::string
toString(RecoveryPolicy policy)
{
    switch (policy) {
      case RecoveryPolicy::Requeue: return "requeue";
      case RecoveryPolicy::Shrink: return "shrink";
      case RecoveryPolicy::Migrate: return "migrate";
    }
    sim::panic("toString: bad RecoveryPolicy %d",
               static_cast<int>(policy));
}

namespace {

/** Largest power of two <= n (0 when n < 1). */
int
largestPow2(int n)
{
    int w = 0;
    for (int c = 1; c <= n; c *= 2)
        w = c;
    return w;
}

} // namespace

ElasticMetrics
simulateElastic(const std::vector<OnlineJob> &jobs, int gpus,
                OnlinePolicy policy,
                const std::vector<GpuOutage> &outages,
                RecoveryPolicy recovery, double checkpoint_every_s,
                double restart_overhead_s)
{
    if (jobs.empty())
        sim::fatal("simulateElastic: no jobs");
    if (gpus < 1 || (gpus & (gpus - 1)) != 0)
        sim::fatal("simulateElastic: GPU count %d must be a power of 2",
                   gpus);
    if (checkpoint_every_s <= 0.0 || restart_overhead_s < 0.0)
        sim::fatal("simulateElastic: bad checkpoint (%g s) or restart "
                   "(%g s) parameters", checkpoint_every_s,
                   restart_overhead_s);
    for (const auto &j : jobs) {
        if (j.arrival_s < 0.0)
            sim::fatal("simulateElastic: negative arrival for '%s'",
                       j.profile.name.c_str());
        for (int w = 1; w <= gpus; w *= 2) {
            if (!j.profile.supportsWidth(w))
                sim::fatal("simulateElastic: '%s' missing width %d",
                           j.profile.name.c_str(), w);
        }
    }
    for (const auto &o : outages) {
        if (o.gpu < 0 || o.gpu >= gpus)
            sim::fatal("simulateElastic: outage GPU %d out of range",
                       o.gpu);
        if (o.start_s < 0.0)
            sim::fatal("simulateElastic: negative outage start");
    }
    if (policy == OnlinePolicy::Backfill)
        sim::warn("simulateElastic: backfill reservations are not "
                  "modeled under faults; using fifo-best-width");

    constexpr double kInf = std::numeric_limits<double>::infinity();

    // Arrival order (stable for ties).
    std::vector<int> arrival_order(jobs.size());
    std::iota(arrival_order.begin(), arrival_order.end(), 0);
    std::stable_sort(arrival_order.begin(), arrival_order.end(),
                     [&](int a, int b) {
                         return jobs[a].arrival_s < jobs[b].arrival_s;
                     });
    std::vector<GpuOutage> outage_order = outages;
    std::stable_sort(outage_order.begin(), outage_order.end(),
                     [](const GpuOutage &a, const GpuOutage &b) {
                         return a.start_s < b.start_s;
                     });

    // One running segment of a (possibly interrupted) job.
    struct Segment {
        int job = -1;
        std::vector<int> gpus;
        double start_s = 0.0;    ///< includes the restart overhead
        double work_start_s = 0.0;
        double end_s = 0.0;
        double rem0 = 1.0;       ///< remaining work fraction at start
    };
    struct QueueEntry {
        int job;
        double remaining; ///< fraction of full work left
        bool resumed;
    };

    std::vector<Segment> running;
    std::vector<int> seg_of(gpus, -1); ///< segment index per GPU
    std::vector<double> out_until(gpus, 0.0);
    std::vector<bool> is_out(gpus, false);
    std::deque<QueueEntry> queue;

    ElasticMetrics res;
    res.online.schedule.num_gpus = gpus;
    std::vector<double> first_start(jobs.size(), -1.0);
    std::vector<double> final_end(jobs.size(), -1.0);
    std::vector<int> segment_no(jobs.size(), 0);
    double busy_gpu_s = 0.0, useful_gpu_s = 0.0;
    std::size_t next_arrival = 0, next_outage = 0, done = 0;
    double now = 0.0;

    auto aliveGpus = [&] {
        int n = 0;
        for (int g = 0; g < gpus; ++g)
            n += !(is_out[g] && std::isinf(out_until[g]));
        return n;
    };
    auto idleGpus = [&] {
        std::vector<int> idle;
        for (int g = 0; g < gpus; ++g)
            if (!is_out[g] && seg_of[g] < 0)
                idle.push_back(g);
        return idle;
    };
    auto desiredWidth = [&](int ji) {
        int w = policy == OnlinePolicy::FifoFullWidth
                    ? gpus
                    : bestWidth(jobs[ji].profile, gpus);
        return std::min(w, largestPow2(aliveGpus()));
    };

    auto startSegment = [&](const QueueEntry &e,
                            std::vector<int> chosen) {
        const JobSpec &prof = jobs[e.job].profile;
        int width = static_cast<int>(chosen.size());
        Segment s;
        s.job = e.job;
        s.gpus = std::move(chosen);
        s.start_s = now;
        double overhead = e.resumed ? restart_overhead_s : 0.0;
        s.work_start_s = now + overhead;
        s.end_s = s.work_start_s + e.remaining * prof.timeAt(width);
        s.rem0 = e.remaining;
        res.restart_s += overhead * width;
        if (first_start[e.job] < 0.0)
            first_start[e.job] = now;
        int idx = static_cast<int>(running.size());
        for (int g : s.gpus)
            seg_of[g] = idx;
        running.push_back(std::move(s));
    };

    // Interrupt the segment on GPU g (which just went out): compute
    // checkpoint-preserved progress and hand the job to the recovery
    // policy.
    auto interrupt = [&](int seg_idx) {
        Segment s = running[seg_idx];
        const JobSpec &prof = jobs[s.job].profile;
        int width = static_cast<int>(s.gpus.size());
        double full = prof.timeAt(width);
        double worked = std::max(0.0, now - s.work_start_s);
        double preserved =
            std::floor(worked / checkpoint_every_s) *
            checkpoint_every_s;
        double lost = worked - preserved;
        res.lost_work_s += lost * width;
        ++res.interruptions;
        busy_gpu_s += (now - s.start_s) * width;
        useful_gpu_s += preserved * width;
        double remaining = std::max(0.0, s.rem0 - preserved / full);

        // Record the cut-short placement.
        Placement p;
        p.job = prof.name + "#" + std::to_string(s.job) + ".s" +
                std::to_string(segment_no[s.job]++);
        p.gpus = s.gpus;
        p.start_s = s.start_s;
        p.end_s = now;
        res.online.schedule.placements.push_back(std::move(p));

        for (int g : s.gpus)
            seg_of[g] = -1;
        running[seg_idx].job = -1; // tombstone

        if (remaining <= 1e-12) {
            final_end[s.job] = now;
            ++done;
            return;
        }
        QueueEntry entry{s.job, remaining, true};
        std::vector<int> survivors;
        for (int g : s.gpus)
            if (!is_out[g])
                survivors.push_back(g);

        if (recovery == RecoveryPolicy::Migrate) {
            auto idle = idleGpus();
            if (static_cast<int>(idle.size()) >= width) {
                startSegment(entry, {idle.begin(), idle.begin() + width});
                return;
            }
        }
        if (recovery == RecoveryPolicy::Shrink ||
            recovery == RecoveryPolicy::Migrate) {
            int w2 = largestPow2(static_cast<int>(survivors.size()));
            if (w2 >= 1) {
                startSegment(entry,
                             {survivors.begin(), survivors.begin() + w2});
                return;
            }
        }
        queue.push_front(entry);
    };

    // Event loop over arrivals, completions, outage starts and ends.
    while (done < jobs.size()) {
        double t_next = kInf;
        if (next_arrival < arrival_order.size())
            t_next = std::min(t_next,
                              jobs[arrival_order[next_arrival]].arrival_s);
        if (next_outage < outage_order.size())
            t_next = std::min(t_next, outage_order[next_outage].start_s);
        for (const Segment &s : running)
            if (s.job >= 0)
                t_next = std::min(t_next, s.end_s);
        for (int g = 0; g < gpus; ++g)
            if (is_out[g] && !std::isinf(out_until[g]))
                t_next = std::min(t_next, out_until[g]);
        if (!std::isfinite(t_next))
            sim::fatal("simulateElastic: stalled at t=%g with %zu jobs "
                       "unfinished (machine dead?)", now,
                       jobs.size() - done);
        now = std::max(now, t_next);

        // 1. Outages ending.
        for (int g = 0; g < gpus; ++g)
            if (is_out[g] && out_until[g] <= now + 1e-12)
                is_out[g] = false;

        // 2. Segment completions.
        for (std::size_t si = 0; si < running.size(); ++si) {
            Segment &s = running[si];
            if (s.job < 0 || s.end_s > now + 1e-12)
                continue;
            int width = static_cast<int>(s.gpus.size());
            busy_gpu_s += (s.end_s - s.start_s) * width;
            useful_gpu_s += (s.end_s - s.work_start_s) * width;
            Placement p;
            p.job = jobs[s.job].profile.name + "#" +
                    std::to_string(s.job) +
                    (segment_no[s.job] > 0
                         ? ".s" + std::to_string(segment_no[s.job]++)
                         : "");
            p.gpus = s.gpus;
            p.start_s = s.start_s;
            p.end_s = s.end_s;
            res.online.schedule.placements.push_back(std::move(p));
            final_end[s.job] = s.end_s;
            ++done;
            for (int g : s.gpus)
                seg_of[g] = -1;
            s.job = -1;
        }

        // 3. Outages starting: take the GPU out, interrupt its job.
        while (next_outage < outage_order.size() &&
               outage_order[next_outage].start_s <= now + 1e-12) {
            const GpuOutage &o = outage_order[next_outage++];
            double until =
                o.permanent() ? kInf : o.start_s + o.duration_s;
            out_until[o.gpu] = is_out[o.gpu]
                                   ? std::max(out_until[o.gpu], until)
                                   : until;
            is_out[o.gpu] = true;
            if (seg_of[o.gpu] >= 0)
                interrupt(seg_of[o.gpu]);
        }

        // 4. Arrivals.
        while (next_arrival < arrival_order.size() &&
               jobs[arrival_order[next_arrival]].arrival_s <=
                   now + 1e-12) {
            queue.push_back({arrival_order[next_arrival], 1.0, false});
            ++next_arrival;
        }

        // 5. FIFO dispatch at the current instant.
        while (!queue.empty()) {
            int width = desiredWidth(queue.front().job);
            auto idle = idleGpus();
            if (width < 1 || static_cast<int>(idle.size()) < width)
                break;
            QueueEntry e = queue.front();
            queue.pop_front();
            startSegment(e, {idle.begin(), idle.begin() + width});
        }
    }

    // Metrics.
    double wait_sum = 0.0, turn_sum = 0.0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        double wait = first_start[i] - jobs[i].arrival_s;
        wait_sum += wait;
        res.online.max_wait_s = std::max(res.online.max_wait_s, wait);
        turn_sum += final_end[i] - jobs[i].arrival_s;
        res.online.makespan_s =
            std::max(res.online.makespan_s, final_end[i]);
    }
    res.online.avg_wait_s = wait_sum / jobs.size();
    res.online.avg_turnaround_s = turn_sum / jobs.size();
    res.online.utilization =
        res.online.makespan_s > 0.0
            ? busy_gpu_s / (res.online.makespan_s * gpus)
            : 0.0;
    res.goodput = busy_gpu_s > 0.0 ? useful_gpu_s / busy_gpu_s : 1.0;
    double out_gpu_s = 0.0;
    for (const auto &o : outages) {
        double end = o.permanent() ? res.online.makespan_s
                                   : std::min(o.start_s + o.duration_s,
                                              res.online.makespan_s);
        out_gpu_s += std::max(0.0, end - std::min(o.start_s,
                                                  res.online.makespan_s));
    }
    res.availability =
        res.online.makespan_s > 0.0
            ? 1.0 - out_gpu_s / (res.online.makespan_s * gpus)
            : 1.0;
    return res;
}

std::vector<GpuOutage>
outagesFromTrace(const std::vector<fault::FaultEvent> &trace,
                 double min_outage_s)
{
    std::vector<GpuOutage> outages;
    for (const fault::FaultEvent &ev : trace) {
        if (ev.resource < 0)
            continue;
        if (ev.kind == fault::FaultKind::GpuLoss) {
            outages.push_back({ev.resource, ev.start_s, 0.0});
        } else if ((ev.kind == fault::FaultKind::EccRetryStorm ||
                    ev.kind == fault::FaultKind::GpuStall) &&
                   ev.duration_s >= min_outage_s) {
            outages.push_back({ev.resource, ev.start_s, ev.duration_s});
        }
    }
    return outages;
}

std::vector<GpuOutage>
outagesFromLinkTrace(const std::vector<fault::LinkFaultEvent> &trace,
                     const sys::SystemConfig &system,
                     double min_outage_s)
{
    // Map topology GPU node id -> scheduler GPU ordinal.
    auto ordinalOf = [&](net::NodeId node) {
        for (std::size_t i = 0; i < system.gpu_nodes.size(); ++i) {
            if (system.gpu_nodes[i] == node)
                return static_cast<int>(i);
        }
        return -1;
    };

    std::vector<GpuOutage> outages;
    for (const fault::LinkFaultEvent &ev : trace) {
        if (ev.kind == fault::LinkFaultKind::LinkDown && ev.edge >= 0) {
            if (ev.duration_s > 0.0 && ev.duration_s < min_outage_s)
                continue;
            auto [a, b] = system.topo.endpoints(ev.edge);
            for (net::NodeId n : {a, b}) {
                if (system.topo.kind(n) != net::NodeKind::Gpu)
                    continue;
                int gpu = ordinalOf(n);
                if (gpu >= 0)
                    outages.push_back({gpu, ev.start_s,
                                       std::max(ev.duration_s, 0.0)});
            }
        } else if (ev.kind == fault::LinkFaultKind::ThermalThrottle &&
                   ev.gpu >= 0 && ev.duration_s >= min_outage_s) {
            outages.push_back({ev.gpu, ev.start_s, ev.duration_s});
        }
    }
    return outages;
}

std::vector<OnlineJob>
poissonJobStream(const std::vector<JobSpec> &catalogue, int count,
                 double mean_interarrival_s, std::uint64_t seed)
{
    if (catalogue.empty())
        sim::fatal("poissonJobStream: empty catalogue");
    if (count < 1 || mean_interarrival_s <= 0.0)
        sim::fatal("poissonJobStream: bad stream parameters");
    sim::Rng rng(seed);
    std::vector<OnlineJob> jobs;
    double t = 0.0;
    for (int i = 0; i < count; ++i) {
        OnlineJob j;
        j.profile = catalogue[rng.below(catalogue.size())];
        j.profile.name += "_a" + std::to_string(i);
        j.arrival_s = t;
        jobs.push_back(std::move(j));
        // Exponential inter-arrival.
        double u = std::max(rng.uniform(), 1e-12);
        t += -mean_interarrival_s * std::log(u);
    }
    return jobs;
}

} // namespace mlps::sched
