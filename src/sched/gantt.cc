#include "sched/gantt.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "sim/logger.h"

namespace mlps::sched {

std::string
renderGantt(const Schedule &schedule, int columns)
{
    if (columns < 10)
        sim::fatal("renderGantt: need at least 10 columns");
    double span = schedule.makespan();
    std::ostringstream os;
    if (span <= 0.0) {
        os << "(empty schedule)\n";
        return os.str();
    }

    // Assign each job a letter.
    std::vector<std::string> job_names;
    for (const auto &p : schedule.placements) {
        if (std::find(job_names.begin(), job_names.end(), p.job) ==
            job_names.end())
            job_names.push_back(p.job);
    }
    auto letter = [&](const std::string &job) {
        auto it = std::find(job_names.begin(), job_names.end(), job);
        std::size_t i = it - job_names.begin();
        return static_cast<char>(i < 26 ? 'A' + i : 'a' + (i - 26));
    };

    for (int g = 0; g < schedule.num_gpus; ++g) {
        std::string line(columns, '.');
        for (const auto &p : schedule.placements) {
            if (std::find(p.gpus.begin(), p.gpus.end(), g) ==
                p.gpus.end())
                continue;
            int c0 = static_cast<int>(p.start_s / span * columns);
            int c1 = static_cast<int>(p.end_s / span * columns);
            c1 = std::max(c1, c0 + 1);
            for (int c = c0; c < c1 && c < columns; ++c)
                line[c] = letter(p.job);
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "GPU%-2d |", g);
        os << buf << line << "|\n";
    }
    os << "legend:";
    for (const auto &name : job_names)
        os << " " << letter(name) << "=" << name;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\nmakespan: %.2f h\n",
                  span / 3600.0);
    os << buf;
    return os.str();
}

std::string
describeSchedule(const Schedule &schedule)
{
    std::vector<Placement> sorted = schedule.placements;
    std::sort(sorted.begin(), sorted.end(),
              [](const Placement &a, const Placement &b) {
                  if (a.start_s != b.start_s)
                      return a.start_s < b.start_s;
                  return a.job < b.job;
              });
    std::ostringstream os;
    char buf[160];
    for (const auto &p : sorted) {
        std::string gpus;
        for (int g : p.gpus)
            gpus += (gpus.empty() ? "" : ",") + std::to_string(g);
        std::snprintf(buf, sizeof(buf),
                      "  %-16s gpus[%s]  %7.2f h -> %7.2f h\n",
                      p.job.c_str(), gpus.c_str(), p.start_s / 3600.0,
                      p.end_s / 3600.0);
        os << buf;
    }
    return os.str();
}

} // namespace mlps::sched
