#include "sched/job_spec.h"

#include "sim/logger.h"

namespace mlps::sched {

double
JobSpec::timeAt(int width) const
{
    auto it = seconds_at_width.find(width);
    if (it == seconds_at_width.end())
        sim::fatal("JobSpec '%s': no time at width %d", name.c_str(),
                   width);
    return it->second;
}

bool
JobSpec::supportsWidth(int width) const
{
    return seconds_at_width.count(width) > 0;
}

double
JobSpec::speedupAt(int width) const
{
    return timeAt(1) / timeAt(width);
}

void
validateJobs(const std::vector<JobSpec> &jobs, int gpus)
{
    if (jobs.empty())
        sim::fatal("validateJobs: no jobs");
    if (gpus < 1 || (gpus & (gpus - 1)) != 0)
        sim::fatal("validateJobs: GPU count %d must be a power of two",
                   gpus);
    if (jobs.size() > 24)
        sim::fatal("validateJobs: %zu jobs exceeds exact-search limit",
                   jobs.size());
    for (const auto &j : jobs) {
        for (int w = 1; w <= gpus; w *= 2) {
            if (!j.supportsWidth(w))
                sim::fatal("JobSpec '%s': missing width %d",
                           j.name.c_str(), w);
            if (j.timeAt(w) <= 0.0)
                sim::fatal("JobSpec '%s': non-positive time at width %d",
                           j.name.c_str(), w);
        }
    }
}

} // namespace mlps::sched
