#include "sched/naive.h"

#include <algorithm>
#include <numeric>

#include "sim/logger.h"

namespace mlps::sched {

Schedule
naiveSchedule(const std::vector<JobSpec> &jobs, int gpus)
{
    validateJobs(jobs, gpus);
    Schedule s;
    s.num_gpus = gpus;
    std::vector<int> all(gpus);
    std::iota(all.begin(), all.end(), 0);
    double t = 0.0;
    for (const auto &j : jobs) {
        Placement p;
        p.job = j.name;
        p.gpus = all;
        p.start_s = t;
        p.end_s = t + j.timeAt(gpus);
        t = p.end_s;
        s.placements.push_back(std::move(p));
    }
    s.validate(jobs);
    return s;
}

Schedule
greedySchedule(const std::vector<JobSpec> &jobs, int gpus)
{
    validateJobs(jobs, gpus);
    // Width choice: the widest width that still keeps parallel
    // efficiency >= 0.75 (diminishing-returns cut-off).
    auto chooseWidth = [&](const JobSpec &j) {
        int best = 1;
        for (int w = 2; w <= gpus; w *= 2) {
            if (j.speedupAt(w) / w >= 0.75)
                best = w;
        }
        return best;
    };

    // Longest (at chosen width) first.
    std::vector<const JobSpec *> order;
    for (const auto &j : jobs)
        order.push_back(&j);
    std::sort(order.begin(), order.end(),
              [&](const JobSpec *a, const JobSpec *b) {
                  return a->timeAt(chooseWidth(*a)) >
                         b->timeAt(chooseWidth(*b));
              });

    Schedule s;
    s.num_gpus = gpus;
    std::vector<double> free_at(gpus, 0.0);
    for (const JobSpec *j : order) {
        int w = chooseWidth(*j);
        // Earliest-available w GPUs.
        std::vector<int> idx(gpus);
        std::iota(idx.begin(), idx.end(), 0);
        std::sort(idx.begin(), idx.end(), [&](int a, int b) {
            return free_at[a] < free_at[b];
        });
        std::vector<int> chosen(idx.begin(), idx.begin() + w);
        double start = 0.0;
        for (int g : chosen)
            start = std::max(start, free_at[g]);
        Placement p;
        p.job = j->name;
        p.gpus = chosen;
        p.start_s = start;
        p.end_s = start + j->timeAt(w);
        for (int g : chosen)
            free_at[g] = p.end_s;
        s.placements.push_back(std::move(p));
    }
    s.validate(jobs);
    return s;
}

} // namespace mlps::sched
