/**
 * @file
 * Moldable-job description for the multi-GPU scheduling study
 * (paper Section IV-D / Figure 4): a training job's wall time as a
 * function of the GPU count it is given.
 */

#ifndef MLPSIM_SCHED_JOB_SPEC_H
#define MLPSIM_SCHED_JOB_SPEC_H

#include <map>
#include <string>
#include <vector>

namespace mlps::sched {

/** One schedulable training job. */
struct JobSpec {
    std::string name;
    /** Wall-clock seconds when run on `width` GPUs. */
    std::map<int, double> seconds_at_width;

    /** Time at a width; fatal if the width was never measured. */
    double timeAt(int width) const;

    /** True when the width has a measured time. */
    bool supportsWidth(int width) const;

    /** Speedup of width w over one GPU. */
    double speedupAt(int width) const;
};

/** Validate a job list against a GPU count (powers of two up to G). */
void validateJobs(const std::vector<JobSpec> &jobs, int gpus);

} // namespace mlps::sched

#endif // MLPSIM_SCHED_JOB_SPEC_H
