/**
 * @file
 * Online multi-GPU job scheduling — the operational version of the
 * paper's Figure 4 insight. Training jobs arrive over time at a
 * shared machine; policies decide when and at what width each runs.
 * Section IV-D explicitly flags this as the problem data-center
 * administrators face; this module lets the policies be compared on
 * the measured scaling profiles.
 */

#ifndef MLPSIM_SCHED_ONLINE_H
#define MLPSIM_SCHED_ONLINE_H

#include <string>
#include <vector>

#include "sched/schedule.h"
#include "sim/rng.h"

namespace mlps::sched {

/** One job submission. */
struct OnlineJob {
    JobSpec profile;
    double arrival_s = 0.0;
};

/** Scheduling policy for the online setting. */
enum class OnlinePolicy {
    /** FIFO; every job runs distributed across all GPUs (paper's
     *  naive policy, applied online). */
    FifoFullWidth,
    /** FIFO; each job runs at its most parallel-efficient width on
     *  the earliest-free GPUs. */
    FifoBestWidth,
    /** FifoBestWidth plus conservative backfilling: jobs behind a
     *  blocked head may start if they finish before the head's
     *  reservation. */
    Backfill,
};

/** Human-readable policy name. */
std::string toString(OnlinePolicy policy);

/** Outcome of an online simulation. */
struct OnlineMetrics {
    Schedule schedule;              ///< realised placements
    double makespan_s = 0.0;        ///< last completion
    double avg_wait_s = 0.0;        ///< mean queue wait
    double avg_turnaround_s = 0.0;  ///< mean completion - arrival
    double max_wait_s = 0.0;
    double utilization = 0.0;       ///< busy GPU-time fraction
};

/**
 * Simulate a job stream against a policy.
 *
 * @param jobs arriving jobs (any order; sorted internally).
 * @param gpus machine width (power of two).
 * @param policy scheduling policy.
 */
OnlineMetrics simulateOnline(const std::vector<OnlineJob> &jobs,
                             int gpus, OnlinePolicy policy);

/**
 * Generate a Poisson stream of jobs drawn (with replacement) from a
 * profile catalogue — a synthetic research-group queue.
 *
 * @param catalogue job profiles to draw from.
 * @param count jobs to generate.
 * @param mean_interarrival_s mean arrival gap.
 * @param seed RNG seed.
 */
std::vector<OnlineJob>
poissonJobStream(const std::vector<JobSpec> &catalogue, int count,
                 double mean_interarrival_s, std::uint64_t seed);

} // namespace mlps::sched

#endif // MLPSIM_SCHED_ONLINE_H
