/**
 * @file
 * Online multi-GPU job scheduling — the operational version of the
 * paper's Figure 4 insight. Training jobs arrive over time at a
 * shared machine; policies decide when and at what width each runs.
 * Section IV-D explicitly flags this as the problem data-center
 * administrators face; this module lets the policies be compared on
 * the measured scaling profiles.
 */

#ifndef MLPSIM_SCHED_ONLINE_H
#define MLPSIM_SCHED_ONLINE_H

#include <string>
#include <vector>

#include "fault/fault_model.h"
#include "fault/link_fault.h"
#include "sched/schedule.h"
#include "sim/rng.h"
#include "sys/system_config.h"

namespace mlps::sched {

/** One job submission. */
struct OnlineJob {
    JobSpec profile;
    double arrival_s = 0.0;
};

/** Scheduling policy for the online setting. */
enum class OnlinePolicy {
    /** FIFO; every job runs distributed across all GPUs (paper's
     *  naive policy, applied online). */
    FifoFullWidth,
    /** FIFO; each job runs at its most parallel-efficient width on
     *  the earliest-free GPUs. */
    FifoBestWidth,
    /** FifoBestWidth plus conservative backfilling: jobs behind a
     *  blocked head may start if they finish before the head's
     *  reservation. */
    Backfill,
};

/** Human-readable policy name. */
std::string toString(OnlinePolicy policy);

/** Outcome of an online simulation. */
struct OnlineMetrics {
    Schedule schedule;              ///< realised placements
    double makespan_s = 0.0;        ///< last completion
    double avg_wait_s = 0.0;        ///< mean queue wait
    double avg_turnaround_s = 0.0;  ///< mean completion - arrival
    double max_wait_s = 0.0;
    double utilization = 0.0;       ///< busy GPU-time fraction
};

/**
 * Simulate a job stream against a policy.
 *
 * @param jobs arriving jobs (any order; sorted internally).
 * @param gpus machine width (power of two).
 * @param policy scheduling policy.
 */
OnlineMetrics simulateOnline(const std::vector<OnlineJob> &jobs,
                             int gpus, OnlinePolicy policy);

/**
 * Generate a Poisson stream of jobs drawn (with replacement) from a
 * profile catalogue — a synthetic research-group queue.
 *
 * @param catalogue job profiles to draw from.
 * @param count jobs to generate.
 * @param mean_interarrival_s mean arrival gap.
 * @param seed RNG seed.
 */
std::vector<OnlineJob>
poissonJobStream(const std::vector<JobSpec> &catalogue, int count,
                 double mean_interarrival_s, std::uint64_t seed);

// ----------------------------------------------------------- elastic

/** One GPU unavailability window visible to the scheduler. */
struct GpuOutage {
    int gpu = 0;
    double start_s = 0.0;
    /** Outage length, seconds; <= 0 means the GPU never returns. */
    double duration_s = 0.0;

    bool permanent() const { return duration_s <= 0.0; }
};

/** What the scheduler does with a job whose GPU just failed. */
enum class RecoveryPolicy {
    /** Put the job back at the head of the queue; rerun when space
     *  frees up (the classic fail-stop restart). */
    Requeue,
    /** Continue immediately on the surviving GPUs of its allocation,
     *  shrunk to the largest power-of-two width. */
    Shrink,
    /** Re-place at the original width on currently idle GPUs when
     *  possible; otherwise shrink, otherwise requeue. */
    Migrate,
};

/** Human-readable recovery-policy name. */
std::string toString(RecoveryPolicy policy);

/** Outcome of an elastic (fault-aware) online simulation. */
struct ElasticMetrics {
    OnlineMetrics online;        ///< realised schedule + queue metrics
    double lost_work_s = 0.0;    ///< GPU-seconds of discarded progress
    double restart_s = 0.0;      ///< GPU-seconds spent relaunching
    double goodput = 0.0;        ///< useful / allocated GPU-time
    double availability = 0.0;   ///< machine GPU-time not in outage
    int interruptions = 0;       ///< job interruptions handled
};

/**
 * Simulate a job stream on a machine whose GPUs suffer outages.
 *
 * Jobs are checkpointed every checkpoint_every_s seconds, so an
 * interruption discards at most that much per-GPU progress and pays
 * restart_overhead_s before the job resumes anywhere. Dispatch is
 * width-aware FIFO (FifoFullWidth is honoured; Backfill degrades to
 * FifoBestWidth — reservations are not modeled under faults).
 *
 * Deterministic: same inputs, same outcome.
 */
ElasticMetrics
simulateElastic(const std::vector<OnlineJob> &jobs, int gpus,
                OnlinePolicy policy, const std::vector<GpuOutage> &outages,
                RecoveryPolicy recovery,
                double checkpoint_every_s = 600.0,
                double restart_overhead_s = 30.0);

/**
 * Lower a FaultModel trace to scheduler-visible outages: GpuLoss
 * becomes a permanent outage; ECC retry storms and GPU stalls drain
 * the device for their duration (operators pull degraded devices).
 * Windows shorter than min_outage_s are ignored as not worth a drain.
 */
std::vector<GpuOutage>
outagesFromTrace(const std::vector<fault::FaultEvent> &trace,
                 double min_outage_s = 10.0);

/**
 * Lower a link-fault trace to scheduler-visible outages: a hard
 * link-down drains the GPUs incident to the dead edge for its
 * duration (operators migrate work off a GPU whose fabric is gone),
 * and a thermal throttle drains its GPU when the window is long
 * enough. Bandwidth-only degradations (lane drops, downtraining) are
 * left to run — migrating costs more than the slowdown. GPU node ids
 * are translated to scheduler ordinals via the system's gpu_nodes.
 */
std::vector<GpuOutage>
outagesFromLinkTrace(const std::vector<fault::LinkFaultEvent> &trace,
                     const sys::SystemConfig &system,
                     double min_outage_s = 10.0);

} // namespace mlps::sched

#endif // MLPSIM_SCHED_ONLINE_H
