/**
 * @file
 * Exact optimal scheduling over the hierarchical schedule class
 * (Figure 4b).
 *
 * A hierarchical schedule on g GPUs runs some subset of jobs
 * distributed across all g GPUs back-to-back, then splits the machine
 * into two g/2 halves and recurses on a partition of the remaining
 * jobs. This class contains the paper's optimal schedules (e.g.
 * "XFMR and SSD on all 4, then MRCNN on 2 while the two ResNets get
 * one GPU each") and admits exact search by memoised dynamic
 * programming over (job bitmask, width) — exponential only in the job
 * count, which is 7 here.
 */

#ifndef MLPSIM_SCHED_OPTIMAL_H
#define MLPSIM_SCHED_OPTIMAL_H

#include <vector>

#include "sched/schedule.h"

namespace mlps::sched {

/** Result of the exact search. */
struct OptimalResult {
    Schedule schedule;
    double makespan_s = 0.0;
    /** States visited by the DP (for ablation reporting). */
    std::size_t states_explored = 0;
};

/**
 * Exact minimum-makespan hierarchical schedule.
 *
 * @param jobs job list (<= 24 jobs; 7 in the paper's study).
 * @param gpus power-of-two GPU count.
 */
OptimalResult optimalSchedule(const std::vector<JobSpec> &jobs, int gpus);

/**
 * Lower bound on any schedule's makespan: max(critical job at its
 * best width, total-work / G). Used by tests to sanity-check the DP
 * and by the ablation bench.
 */
double makespanLowerBound(const std::vector<JobSpec> &jobs, int gpus);

} // namespace mlps::sched

#endif // MLPSIM_SCHED_OPTIMAL_H
