#include "sched/optimal.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "sim/logger.h"

namespace mlps::sched {

namespace {

using Mask = std::uint32_t;

/** DP key: job mask in the low bits, width index in the high bits. */
std::uint64_t
dpKey(Mask mask, int width)
{
    return (static_cast<std::uint64_t>(width) << 32) | mask;
}

struct Decision {
    Mask full_width = 0; ///< jobs run at this width, sequentially
    Mask left = 0;       ///< jobs sent to the first half
    // right half = rest
};

struct Solver {
    const std::vector<JobSpec> &jobs;
    std::unordered_map<std::uint64_t, double> memo;
    std::unordered_map<std::uint64_t, Decision> choice;
    std::size_t states = 0;
    /**
     * times[log2(width)][job]: the JobSpec maps flattened into arrays
     * once up front, so the exponential subset enumeration below
     * indexes contiguous memory instead of probing a std::map per
     * (job, width) pair.
     */
    std::vector<std::vector<double>> times;

    Solver(const std::vector<JobSpec> &js, int gpus) : jobs(js)
    {
        for (int w = 1; w <= gpus; w *= 2) {
            std::vector<double> at_w;
            at_w.reserve(jobs.size());
            for (const auto &j : jobs)
                at_w.push_back(j.timeAt(w));
            times.push_back(std::move(at_w));
        }
    }

    /** Summed time of the masked jobs at the given width. */
    double
    sumAt(Mask mask, int width_log) const
    {
        const std::vector<double> &at_w = times[width_log];
        double s = 0.0;
        while (mask) {
            s += at_w[static_cast<std::size_t>(__builtin_ctz(mask))];
            mask &= mask - 1;
        }
        return s;
    }

    double
    solve(Mask mask, int width)
    {
        if (mask == 0)
            return 0.0;
        std::uint64_t key = dpKey(mask, width);
        auto it = memo.find(key);
        if (it != memo.end())
            return it->second;
        ++states;

        double best = std::numeric_limits<double>::infinity();
        Decision best_dec;

        if (width == 1) {
            // Base: everything runs sequentially on the single GPU.
            best = sumAt(mask, 0);
            best_dec.full_width = mask;
        } else {
            const int width_log = __builtin_ctz(
                static_cast<unsigned>(width));
            // Choose the subset F run at full width (sequentially),
            // then split the rest across the two halves.
            for (Mask f = mask;; f = (f - 1) & mask) {
                double head = sumAt(f, width_log);
                Mask rest = mask & ~f;
                double tail = 0.0;
                Mask best_left = 0;
                if (rest != 0) {
                    tail = std::numeric_limits<double>::infinity();
                    // Partition rest into (a, rest\a); to halve the
                    // symmetric double-count, pin the lowest set bit
                    // of rest to the left side.
                    Mask pin = rest & (~rest + 1);
                    Mask vary = rest & ~pin;
                    for (Mask a = vary;; a = (a - 1) & vary) {
                        Mask left = a | pin;
                        Mask right = rest & ~left;
                        double cand =
                            std::max(solve(left, width / 2),
                                     solve(right, width / 2));
                        if (cand < tail) {
                            tail = cand;
                            best_left = left;
                        }
                        if (a == 0)
                            break;
                    }
                }
                if (head + tail < best) {
                    best = head + tail;
                    best_dec.full_width = f;
                    best_dec.left = best_left;
                }
                if (f == 0)
                    break;
            }
        }

        memo.emplace(key, best);
        choice.emplace(key, best_dec);
        return best;
    }

    /** Rebuild placements from the memoised decisions. */
    void
    reconstruct(Mask mask, int width, const std::vector<int> &gpu_set,
                double start, Schedule &out)
    {
        if (mask == 0)
            return;
        const Decision &dec = choice.at(dpKey(mask, width));
        double t = start;
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            if (dec.full_width & (Mask(1) << j)) {
                Placement p;
                p.job = jobs[j].name;
                p.gpus = gpu_set;
                p.start_s = t;
                p.end_s = t + jobs[j].timeAt(width);
                t = p.end_s;
                out.placements.push_back(std::move(p));
            }
        }
        Mask rest = mask & ~dec.full_width;
        if (rest == 0)
            return;
        std::vector<int> half_a(gpu_set.begin(),
                                gpu_set.begin() + gpu_set.size() / 2);
        std::vector<int> half_b(gpu_set.begin() + gpu_set.size() / 2,
                                gpu_set.end());
        reconstruct(dec.left, width / 2, half_a, t, out);
        reconstruct(rest & ~dec.left, width / 2, half_b, t, out);
    }
};

} // namespace

OptimalResult
optimalSchedule(const std::vector<JobSpec> &jobs, int gpus)
{
    validateJobs(jobs, gpus);
    Solver solver(jobs, gpus);
    Mask all = (Mask(1) << jobs.size()) - 1;
    double makespan = solver.solve(all, gpus);

    OptimalResult res;
    res.makespan_s = makespan;
    res.states_explored = solver.states;
    res.schedule.num_gpus = gpus;
    std::vector<int> gpu_set(gpus);
    std::iota(gpu_set.begin(), gpu_set.end(), 0);
    solver.reconstruct(all, gpus, gpu_set, 0.0, res.schedule);
    res.schedule.validate(jobs);

    if (std::fabs(res.schedule.makespan() - makespan) > 1e-6 * makespan)
        sim::panic("optimalSchedule: reconstruction mismatch (%g vs %g)",
                   res.schedule.makespan(), makespan);
    return res;
}

double
makespanLowerBound(const std::vector<JobSpec> &jobs, int gpus)
{
    validateJobs(jobs, gpus);
    double total_work = 0.0; // GPU-seconds at ideal width
    double critical = 0.0;
    for (const auto &j : jobs) {
        double best_time = std::numeric_limits<double>::infinity();
        double best_work = std::numeric_limits<double>::infinity();
        for (int w = 1; w <= gpus; w *= 2) {
            best_time = std::min(best_time, j.timeAt(w));
            best_work = std::min(best_work, j.timeAt(w) * w);
        }
        critical = std::max(critical, best_time);
        total_work += best_work;
    }
    return std::max(critical, total_work / gpus);
}

} // namespace mlps::sched
