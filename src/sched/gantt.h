/**
 * @file
 * ASCII Gantt rendering of schedules, mirroring the timeline plots of
 * the paper's Figure 4.
 */

#ifndef MLPSIM_SCHED_GANTT_H
#define MLPSIM_SCHED_GANTT_H

#include <string>

#include "sched/schedule.h"

namespace mlps::sched {

/**
 * Render a schedule as per-GPU timelines.
 *
 * @param schedule the schedule.
 * @param columns  character width of the time axis.
 */
std::string renderGantt(const Schedule &schedule, int columns = 72);

/** One-line-per-placement textual listing, sorted by start time. */
std::string describeSchedule(const Schedule &schedule);

} // namespace mlps::sched

#endif // MLPSIM_SCHED_GANTT_H
