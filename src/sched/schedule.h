/**
 * @file
 * Schedule representation: a set of placements (job, GPU set, time
 * interval) plus validation and makespan computation.
 */

#ifndef MLPSIM_SCHED_SCHEDULE_H
#define MLPSIM_SCHED_SCHEDULE_H

#include <string>
#include <vector>

#include "sched/job_spec.h"

namespace mlps::sched {

/** One job execution within a schedule. */
struct Placement {
    std::string job;
    std::vector<int> gpus; ///< GPU indices occupied
    double start_s = 0.0;
    double end_s = 0.0;

    double duration() const { return end_s - start_s; }
    int width() const { return static_cast<int>(gpus.size()); }
};

/** A complete schedule of a job set on a machine. */
struct Schedule {
    int num_gpus = 0;
    std::vector<Placement> placements;

    /** Latest end time. */
    double makespan() const;

    /** Machine-time utilisation: busy GPU-seconds / (G * makespan). */
    double utilization() const;

    /**
     * Check structural validity: every GPU index in range, no two
     * placements overlap on a GPU, every job appears exactly once.
     * fatal() on violation.
     */
    void validate(const std::vector<JobSpec> &jobs) const;
};

} // namespace mlps::sched

#endif // MLPSIM_SCHED_SCHEDULE_H
