/**
 * @file
 * The paper's baseline scheduling policy (Figure 4a): run every job
 * distributed across all GPUs, one after another. Simple, fragment-
 * free, and — as Figure 4 shows — leaves hours on the table when the
 * job mix has diverse scaling efficiency.
 */

#ifndef MLPSIM_SCHED_NAIVE_H
#define MLPSIM_SCHED_NAIVE_H

#include <vector>

#include "sched/schedule.h"

namespace mlps::sched {

/** Sequential full-width schedule of the jobs, in the given order. */
Schedule naiveSchedule(const std::vector<JobSpec> &jobs, int gpus);

/**
 * Greedy list schedule (longest-processing-time-first, each job at
 * its most efficient width, placed at the earliest gap). A practical
 * mid-point between naive and the exact optimum; used by the
 * scheduling ablation bench.
 */
Schedule greedySchedule(const std::vector<JobSpec> &jobs, int gpus);

} // namespace mlps::sched

#endif // MLPSIM_SCHED_NAIVE_H
