/**
 * @file
 * MLPf_SSD_Py: single-shot detection (SSD300 with a ResNet-34
 * backbone, NVIDIA's PyTorch submission) on COCO.
 */

#ifndef MLPSIM_MODELS_SSD_H
#define MLPSIM_MODELS_SSD_H

#include "wl/workload.h"

namespace mlps::models {

/** Bare SSD300-ResNet34 op graph. */
wl::OpGraph ssdGraph();

/** MLPf_SSD_Py workload. */
wl::WorkloadSpec mlperfSsd();

} // namespace mlps::models

#endif // MLPSIM_MODELS_SSD_H
