#include "models/resnet.h"

#include "models/builders.h"

namespace mlps::models {

wl::OpGraph
resnet50Graph(int h, int w, int classes)
{
    wl::OpGraph g("ResNet-50");
    SpatialState s{h, w, 3};
    resnetStem(g, s);

    const int stage_blocks[4] = {3, 4, 6, 3};
    const int stage_width[4] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        for (int block = 0; block < stage_blocks[stage]; ++block) {
            int stride = (block == 0 && stage > 0) ? 2 : 1;
            std::string name = "res" + std::to_string(stage + 2) + "." +
                               std::to_string(block);
            bottleneckBlock(g, name, s, stage_width[stage], stride);
        }
    }
    g.add(wl::pool("avgpool", static_cast<double>(s.c)));
    g.add(wl::gemm("fc", 1, s.c, classes));
    g.add(wl::softmax("softmax", classes));
    return g;
}

wl::OpGraph
resnet34Graph(int h, int w, int classes)
{
    wl::OpGraph g("ResNet-34");
    SpatialState s{h, w, 3};
    resnetStem(g, s);

    const int stage_blocks[4] = {3, 4, 6, 3};
    const int stage_width[4] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        for (int block = 0; block < stage_blocks[stage]; ++block) {
            int stride = (block == 0 && stage > 0) ? 2 : 1;
            std::string name = "res" + std::to_string(stage + 2) + "." +
                               std::to_string(block);
            basicBlock(g, name, s, stage_width[stage], stride);
        }
    }
    g.add(wl::pool("avgpool", static_cast<double>(s.c)));
    g.add(wl::gemm("fc", 1, s.c, classes));
    g.add(wl::softmax("softmax", classes));
    return g;
}

wl::OpGraph
resnet18CifarGraph()
{
    wl::OpGraph g("ResNet-18-CIFAR");
    SpatialState s{32, 32, 3};
    // CIFAR stem: single 3x3 conv, no downsampling.
    g.add(wl::conv2d("stem.conv", s.h, s.w, 3, 64, 3));
    s.c = 64;
    g.add(wl::norm("stem.bn",
                   static_cast<double>(s.h) * s.w * s.c));

    const int stage_blocks[4] = {2, 2, 2, 2};
    const int stage_width[4] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        for (int block = 0; block < stage_blocks[stage]; ++block) {
            int stride = (block == 0 && stage > 0) ? 2 : 1;
            std::string name = "res" + std::to_string(stage + 2) + "." +
                               std::to_string(block);
            basicBlock(g, name, s, stage_width[stage], stride);
        }
    }
    g.add(wl::pool("avgpool", static_cast<double>(s.c)));
    g.add(wl::gemm("fc", 1, s.c, 10));
    g.add(wl::softmax("softmax", 10));
    return g;
}

namespace {

/** Shared skeleton of the two ResNet-50 submissions. */
wl::WorkloadSpec
resnet50Base()
{
    wl::WorkloadSpec w;
    w.domain = "Image Classification";
    w.model_name = "ResNet-50";
    w.suite = wl::SuiteTag::MLPerf;
    w.graph = resnet50Graph(224, 224);
    w.dataset = wl::imagenet();

    w.convergence.quality_target = "Accuracy: 0.749";
    w.convergence.base_epochs = 53.0;
    w.convergence.reference_global_batch = 4096.0;
    w.convergence.penalty_exponent = 0.12;
    w.convergence.eval_overhead = 0.03;

    // Data-parallel sync cost (BN sync, stragglers) observed on the
    // DSS 8440 scaling runs.
    w.sync_penalty_base = 0.042;

    // JPEG decode + crop/flip augmentation is the heaviest host
    // pipeline in the suite (Section V-A).
    w.host.cpu_core_us_per_sample = 2200.0;
    w.host.framework_dram_bytes = 9.0e9;
    w.host.per_gpu_dram_bytes = 1.4e9;
    w.host.dataset_residency = 0.03; // windows of the 300 GB dataset

    w.per_gpu_batch = 208;
    w.comm_overlap = 0.85;
    w.iteration_overhead_us = 1200.0;
    w.reference_code_derate = 1.55;
    return w;
}

} // namespace

wl::WorkloadSpec
mlperfResnet50TF()
{
    wl::WorkloadSpec w = resnet50Base();
    w.abbrev = "MLPf_Res50_TF";
    w.framework = "TensorFlow";
    w.submitter = "Google";
    // XLA fuses slightly more work away, at marginally lower
    // tensor-core utilisation than MXNet+cuDNN heuristics.
    w.graph.scaleWork(0.935);
    w.tc_efficiency = 0.88;
    w.reference_code_derate = 1.66;
    // The TF submission drives the host harder (tf.data pipeline) and
    // carries slightly more graph-runtime overhead per step.
    w.host.cpu_core_us_per_sample = 3500.0;
    w.iteration_overhead_us = 1500.0;
    w.validate();
    return w;
}

wl::WorkloadSpec
mlperfResnet50MX()
{
    wl::WorkloadSpec w = resnet50Base();
    w.abbrev = "MLPf_Res50_MX";
    w.framework = "MXNet";
    w.submitter = "NVIDIA";
    w.per_gpu_batch = 192;
    w.host.cpu_core_us_per_sample = 2100.0; // DALI pipeline
    w.iteration_overhead_us = 900.0;
    // The MXNet submission converged in fewer epochs at its reference
    // batch but pays a visible large-batch penalty at 8 GPUs, and its
    // horovod-style sync degrades slightly with scale.
    w.convergence.base_epochs = 50.5;
    w.convergence.reference_global_batch = 800.0;
    w.convergence.penalty_exponent = 0.30;
    w.sync_penalty_log = 0.022;
    w.reference_code_derate = 1.64;
    w.validate();
    return w;
}

wl::WorkloadSpec
dawnResnet18()
{
    wl::WorkloadSpec w;
    w.abbrev = "Dawn_Res18_Py";
    w.domain = "Image Classification";
    w.model_name = "ResNet-18 (modified)";
    w.framework = "PyTorch";
    w.submitter = "bkj";
    w.suite = wl::SuiteTag::DawnBench;
    w.graph = resnet18CifarGraph();
    w.dataset = wl::cifar10();

    w.convergence.quality_target = "Test accuracy: 94%";
    w.convergence.base_epochs = 24.0;
    w.convergence.reference_global_batch = 512.0;
    w.convergence.penalty_exponent = 0.15;
    w.convergence.eval_overhead = 0.05;

    // CIFAR10 fits in memory; host work is trivial tensor slicing.
    w.host.cpu_core_us_per_sample = 12.0;
    w.host.framework_dram_bytes = 3.0e9;
    w.host.per_gpu_dram_bytes = 0.8e9;
    w.host.dataset_residency = 1.0;

    w.per_gpu_batch = 512;
    w.comm_overlap = 0.6;
    w.iteration_overhead_us = 1500.0;
    w.reference_code_derate = 1.0;
    w.validate();
    return w;
}

} // namespace mlps::models
