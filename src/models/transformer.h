/**
 * @file
 * MLPf_XFMR_Py: neural machine translation with the Transformer (big)
 * model on WMT17 (NVIDIA's PyTorch submission).
 */

#ifndef MLPSIM_MODELS_TRANSFORMER_H
#define MLPSIM_MODELS_TRANSFORMER_H

#include "wl/workload.h"

namespace mlps::models {

/** Bare Transformer-big op graph (per sentence pair). */
wl::OpGraph transformerGraph();

/** MLPf_XFMR_Py workload. */
wl::WorkloadSpec mlperfTransformer();

} // namespace mlps::models

#endif // MLPSIM_MODELS_TRANSFORMER_H
