#include "models/drqa.h"

#include "models/builders.h"

namespace mlps::models {

namespace {

constexpr int kGlove = 300;     // GloVe embedding width
constexpr int kHidden = 128;    // BiLSTM hidden width
constexpr int kParaLen = 400;   // paragraph tokens
constexpr int kQLen = 30;       // question tokens
constexpr double kVocab = 91'187.0;

} // namespace

wl::OpGraph
drqaGraph()
{
    wl::OpGraph g("DrQA");
    g.add(wl::embedding("embed.para", kVocab, kGlove, kParaLen));
    g.add(wl::embedding("embed.q", kVocab, kGlove, kQLen));

    // Document encoder: 3-layer BiLSTM over the paragraph.
    lstmStack(g, "doc", kGlove + 20, kHidden, 3, kParaLen, true);
    // Question encoder: 3-layer BiLSTM over the question.
    lstmStack(g, "q", kGlove, kHidden, 3, kQLen, true);

    // Aligned question attention + bilinear start/end span scores.
    g.add(wl::attention("align", kParaLen, 2 * kHidden));
    g.add(wl::gemm("span.start", kParaLen, 2 * kHidden, 2 * kHidden));
    g.add(wl::gemm("span.end", kParaLen, 2 * kHidden, 2 * kHidden));
    g.add(wl::softmax("span.softmax", 2.0 * kParaLen));
    return g;
}

wl::WorkloadSpec
dawnDrqa()
{
    wl::WorkloadSpec w;
    w.abbrev = "Dawn_DrQA_Py";
    w.domain = "Question Answering";
    w.model_name = "DrQA";
    w.framework = "PyTorch";
    w.submitter = "Yang et al.";
    w.suite = wl::SuiteTag::DawnBench;
    w.graph = drqaGraph();
    w.dataset = wl::squad();

    w.convergence.quality_target = "F1 score: 0.75";
    w.convergence.base_epochs = 18.0;
    w.convergence.reference_global_batch = 32.0;
    w.convergence.penalty_exponent = 0.2;
    w.convergence.eval_overhead = 0.10;

    // The bulk of DrQA's pipeline (tokenisation, feature extraction,
    // exact-match features, span decoding) runs on the CPU — the paper
    // measures ~49% host utilization against ~20% GPU.
    w.graph.scaleWork(2.0);
    w.host.cpu_core_us_per_sample = 31'000.0;
    w.host.serial_cpu_us_per_sample = 1'600.0;
    w.host.framework_dram_bytes = 5.5e9;
    w.host.per_gpu_dram_bytes = 1.2e9;
    w.host.dataset_residency = 1.0;

    w.per_gpu_batch = 32;
    w.comm_overlap = 0.5;
    w.iteration_overhead_us = 5000.0;
    w.reference_code_derate = 1.0;
    w.validate();
    return w;
}

} // namespace mlps::models
