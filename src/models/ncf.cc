#include "models/ncf.h"

#include "models/builders.h"

namespace mlps::models {

namespace {

constexpr double kUsers = 138'493.0;
constexpr double kItems = 26'744.0;
constexpr int kGmfDim = 64;
constexpr int kMlpDim = 128; // first MLP embedding width per side

} // namespace

wl::OpGraph
ncfGraph()
{
    wl::OpGraph g("NeuMF");
    // GMF branch embeddings.
    g.add(wl::embedding("gmf.user", kUsers, kGmfDim, 1));
    g.add(wl::embedding("gmf.item", kItems, kGmfDim, 1));
    g.add(wl::elementwise("gmf.mul", kGmfDim, 1.0));
    // MLP branch embeddings + tower [256 -> 256 -> 128 -> 64].
    g.add(wl::embedding("mlp.user", kUsers, kMlpDim, 1));
    g.add(wl::embedding("mlp.item", kItems, kMlpDim, 1));
    mlpTower(g, "mlp", {2 * kMlpDim, 256, 128, 64});
    // Fusion + prediction.
    g.add(wl::gemm("predict", 1, kGmfDim + 64, 1));
    g.add(wl::softmax("loss", 1.0));
    return g;
}

wl::WorkloadSpec
mlperfNcf()
{
    wl::WorkloadSpec w;
    w.abbrev = "MLPf_NCF_Py";
    w.domain = "Recommendation";
    w.model_name = "Neural Collaborative Filtering";
    w.framework = "PyTorch";
    w.submitter = "NVIDIA";
    w.suite = wl::SuiteTag::MLPerf;
    w.graph = ncfGraph();
    // Negative-scoring and dropout work beyond the modeled layer list.
    w.graph.scaleWork(2.1);
    w.dataset = wl::movielens20m();
    // Each positive rating is trained with 4 sampled negatives.
    w.dataset.num_samples *= 5.0;

    w.convergence.quality_target = "Hit rate @ 10: 0.635";
    w.convergence.base_epochs = 13.0;
    w.convergence.reference_global_batch = 1'048'576.0;
    w.convergence.penalty_exponent = 0.0;
    // The small dataset caps the useful global batch (Section IV-D):
    // scaling past it shrinks the per-GPU batch instead.
    w.convergence.global_batch_cap = 1'048'576.0;
    w.convergence.eval_overhead = 0.15; // HR@10 eval each epoch

    // Trivial host pipeline: integer triples need no preprocessing
    // (negative sampling is amortised across an epoch).
    w.host.cpu_core_us_per_sample = 0.005;
    w.host.framework_dram_bytes = 2.5e9;
    w.host.per_gpu_dram_bytes = 0.9e9;
    w.host.dataset_residency = 1.0;

    w.per_gpu_batch = 1'048'576.0;
    // 31M embedding parameters all-reduced in fp32 (the tables stay
    // fp32 under AMP) against milliseconds of compute: the highest
    // NVLink pressure in the suite (Table V).
    w.comm_overlap = 0.25;
    w.fp32_gradients = true;
    w.iteration_overhead_us = 11000.0;
    w.reference_code_derate = 5.8;
    w.validate();
    return w;
}

} // namespace mlps::models
