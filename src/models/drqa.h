/**
 * @file
 * Dawn_DrQA_Py: DAWNBench question answering (DrQA document reader on
 * SQuAD, submitted by Yang et al.). Notable in the paper for its CPU-
 * heavy profile: ~49% host CPU and only ~20% GPU utilization.
 */

#ifndef MLPSIM_MODELS_DRQA_H
#define MLPSIM_MODELS_DRQA_H

#include "wl/workload.h"

namespace mlps::models {

/** Bare DrQA document-reader op graph. */
wl::OpGraph drqaGraph();

/** Dawn_DrQA_Py workload. */
wl::WorkloadSpec dawnDrqa();

} // namespace mlps::models

#endif // MLPSIM_MODELS_DRQA_H
