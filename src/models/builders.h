/**
 * @file
 * Reusable network-fragment builders shared by the model zoo:
 * residual blocks, transformer layers, LSTM stacks and MLP towers.
 * Each builder appends ops to an OpGraph and returns updated spatial
 * state where relevant.
 */

#ifndef MLPSIM_MODELS_BUILDERS_H
#define MLPSIM_MODELS_BUILDERS_H

#include <string>
#include <vector>

#include "wl/op_graph.h"

namespace mlps::models {

/** Spatial tensor state threaded through convolutional builders. */
struct SpatialState {
    int h = 224;
    int w = 224;
    int c = 3;
};

/**
 * ResNet bottleneck block (1x1 reduce, 3x3, 1x1 expand, BN+ReLU each,
 * optional projection shortcut). Mutates state.
 *
 * @param c_mid  bottleneck width; output channels are 4*c_mid.
 * @param stride stride of the 3x3 (and the projection).
 */
void bottleneckBlock(wl::OpGraph &g, const std::string &prefix,
                     SpatialState &state, int c_mid, int stride);

/** ResNet basic block (two 3x3 convs). Output channels = c_out. */
void basicBlock(wl::OpGraph &g, const std::string &prefix,
                SpatialState &state, int c_out, int stride);

/** ResNet stem: 7x7/2 conv + BN/ReLU + 3x3/2 maxpool. */
void resnetStem(wl::OpGraph &g, SpatialState &state, int c_out = 64);

/**
 * Transformer encoder layer: self-attention (QKV + output projections
 * + score/context GEMMs) and position-wise FFN, with layer norms.
 *
 * @param seq     tokens per sample.
 * @param d_model model width.
 * @param d_ff    feed-forward width.
 */
void transformerEncoderLayer(wl::OpGraph &g, const std::string &prefix,
                             int seq, int d_model, int d_ff);

/** Transformer decoder layer: self-attn + cross-attn + FFN. */
void transformerDecoderLayer(wl::OpGraph &g, const std::string &prefix,
                             int seq_tgt, int seq_src, int d_model,
                             int d_ff);

/**
 * Stack of LSTM layers.
 *
 * @param input  input width of the first layer.
 * @param hidden hidden width of every layer.
 * @param layers layer count.
 * @param steps  timesteps.
 * @param bidirectional first layer doubled when true.
 */
void lstmStack(wl::OpGraph &g, const std::string &prefix, int input,
               int hidden, int layers, int steps, bool bidirectional);

/** MLP tower of dense layers with ReLU between. */
void mlpTower(wl::OpGraph &g, const std::string &prefix,
              const std::vector<int> &widths);

} // namespace mlps::models

#endif // MLPSIM_MODELS_BUILDERS_H
