#include "models/builders.h"

#include <algorithm>

#include "sim/logger.h"

namespace mlps::models {

using wl::attention;
using wl::conv2d;
using wl::elementwise;
using wl::gemm;
using wl::norm;
using wl::pool;
using wl::rnn;

namespace {

double
pixels(const SpatialState &s)
{
    return static_cast<double>(s.h) * s.w * s.c;
}

} // namespace

void
bottleneckBlock(wl::OpGraph &g, const std::string &prefix,
                SpatialState &state, int c_mid, int stride)
{
    int c_in = state.c;
    int c_out = 4 * c_mid;

    g.add(conv2d(prefix + ".conv1", state.h, state.w, c_in, c_mid, 1));
    SpatialState mid{state.h, state.w, c_mid};
    g.add(norm(prefix + ".bn1", pixels(mid)));

    g.add(conv2d(prefix + ".conv2", state.h, state.w, c_mid, c_mid, 3,
                 stride));
    mid.h = (state.h + stride - 1) / stride;
    mid.w = (state.w + stride - 1) / stride;
    g.add(norm(prefix + ".bn2", pixels(mid)));

    g.add(conv2d(prefix + ".conv3", mid.h, mid.w, c_mid, c_out, 1));
    SpatialState out{mid.h, mid.w, c_out};
    g.add(norm(prefix + ".bn3", pixels(out)));

    if (stride != 1 || c_in != c_out)
        g.add(conv2d(prefix + ".proj", state.h, state.w, c_in, c_out, 1,
                     stride));
    g.add(elementwise(prefix + ".add_relu", pixels(out), 2.0));

    state = out;
}

void
basicBlock(wl::OpGraph &g, const std::string &prefix, SpatialState &state,
           int c_out, int stride)
{
    int c_in = state.c;
    g.add(conv2d(prefix + ".conv1", state.h, state.w, c_in, c_out, 3,
                 stride));
    SpatialState out{(state.h + stride - 1) / stride,
                     (state.w + stride - 1) / stride, c_out};
    g.add(norm(prefix + ".bn1", pixels(out)));
    g.add(conv2d(prefix + ".conv2", out.h, out.w, c_out, c_out, 3));
    g.add(norm(prefix + ".bn2", pixels(out)));
    if (stride != 1 || c_in != c_out)
        g.add(conv2d(prefix + ".proj", state.h, state.w, c_in, c_out, 1,
                     stride));
    g.add(elementwise(prefix + ".add_relu", pixels(out), 2.0));
    state = out;
}

void
resnetStem(wl::OpGraph &g, SpatialState &state, int c_out)
{
    g.add(conv2d("stem.conv", state.h, state.w, state.c, c_out, 7, 2));
    state.h = (state.h + 1) / 2;
    state.w = (state.w + 1) / 2;
    state.c = c_out;
    g.add(norm("stem.bn", pixels(state)));
    state.h = (state.h + 1) / 2;
    state.w = (state.w + 1) / 2;
    g.add(pool("stem.maxpool", pixels(state)));
}

void
transformerEncoderLayer(wl::OpGraph &g, const std::string &prefix, int seq,
                        int d_model, int d_ff)
{
    // QKV + output projections: 4 GEMMs of [seq x d_model x d_model].
    g.add(gemm(prefix + ".qkv_proj", seq, d_model, 3 * d_model));
    g.add(attention(prefix + ".self_attn", seq, d_model));
    g.add(gemm(prefix + ".out_proj", seq, d_model, d_model));
    g.add(norm(prefix + ".ln1", static_cast<double>(seq) * d_model));
    g.add(gemm(prefix + ".ffn1", seq, d_model, d_ff));
    g.add(elementwise(prefix + ".relu",
                      static_cast<double>(seq) * d_ff, 1.0));
    g.add(gemm(prefix + ".ffn2", seq, d_ff, d_model));
    g.add(norm(prefix + ".ln2", static_cast<double>(seq) * d_model));
}

void
transformerDecoderLayer(wl::OpGraph &g, const std::string &prefix,
                        int seq_tgt, int seq_src, int d_model, int d_ff)
{
    g.add(gemm(prefix + ".self_qkv", seq_tgt, d_model, 3 * d_model));
    g.add(attention(prefix + ".self_attn", seq_tgt, d_model));
    g.add(gemm(prefix + ".self_out", seq_tgt, d_model, d_model));
    g.add(norm(prefix + ".ln1", static_cast<double>(seq_tgt) * d_model));

    // Cross attention: queries from target, keys/values from source.
    g.add(gemm(prefix + ".cross_q", seq_tgt, d_model, d_model));
    g.add(gemm(prefix + ".cross_kv", seq_src, d_model, 2 * d_model));
    g.add(attention(prefix + ".cross_attn",
                    std::max(seq_tgt, seq_src), d_model));
    g.add(gemm(prefix + ".cross_out", seq_tgt, d_model, d_model));
    g.add(norm(prefix + ".ln2", static_cast<double>(seq_tgt) * d_model));

    g.add(gemm(prefix + ".ffn1", seq_tgt, d_model, d_ff));
    g.add(elementwise(prefix + ".relu",
                      static_cast<double>(seq_tgt) * d_ff, 1.0));
    g.add(gemm(prefix + ".ffn2", seq_tgt, d_ff, d_model));
    g.add(norm(prefix + ".ln3", static_cast<double>(seq_tgt) * d_model));
}

void
lstmStack(wl::OpGraph &g, const std::string &prefix, int input, int hidden,
          int layers, int steps, bool bidirectional)
{
    if (layers <= 0)
        sim::fatal("lstmStack '%s': non-positive layer count",
                   prefix.c_str());
    for (int l = 0; l < layers; ++l) {
        int in_width = (l == 0) ? input
                                : (bidirectional && l == 1 ? 2 * hidden
                                                           : hidden);
        std::string name = prefix + ".lstm" + std::to_string(l);
        g.add(rnn(name, 4, in_width, hidden, steps));
        if (l == 0 && bidirectional)
            g.add(rnn(name + ".rev", 4, in_width, hidden, steps));
    }
}

void
mlpTower(wl::OpGraph &g, const std::string &prefix,
         const std::vector<int> &widths)
{
    if (widths.size() < 2)
        sim::fatal("mlpTower '%s': need at least two widths",
                   prefix.c_str());
    for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
        std::string name = prefix + ".fc" + std::to_string(i);
        g.add(gemm(name, 1, widths[i], widths[i + 1]));
        if (i + 2 < widths.size())
            g.add(elementwise(name + ".relu", widths[i + 1], 1.0));
    }
}

} // namespace mlps::models
