#include "models/gnmt.h"

#include "models/builders.h"

namespace mlps::models {

namespace {

constexpr int kHidden = 1024;
constexpr int kVocab = 32'000;
constexpr int kSeq = 25; // average tokens per side after BPE

} // namespace

wl::OpGraph
gnmtGraph()
{
    wl::OpGraph g("GNMT");
    g.add(wl::embedding("src_embed", kVocab, kHidden, kSeq));
    g.add(wl::embedding("tgt_embed", kVocab, kHidden, kSeq));

    // Encoder: 4 LSTM layers, first bidirectional.
    lstmStack(g, "enc", kHidden, kHidden, 4, kSeq, true);

    // Decoder: 4 LSTM layers with additive attention to the encoder.
    lstmStack(g, "dec", kHidden, kHidden, 4, kSeq, false);
    g.add(wl::attention("dec.attention", kSeq, kHidden));
    g.add(wl::gemm("dec.attn_proj", kSeq, 2 * kHidden, kHidden));

    // Output classifier over the vocabulary.
    g.add(wl::gemm("classifier", kSeq, kHidden, kVocab));
    g.add(wl::softmax("softmax", static_cast<double>(kSeq) * kVocab));
    return g;
}

wl::WorkloadSpec
mlperfGnmt()
{
    wl::WorkloadSpec w;
    w.abbrev = "MLPf_GNMT_Py";
    w.domain = "Translation (recurrent)";
    w.model_name = "RNN GNMT";
    w.framework = "PyTorch";
    w.submitter = "NVIDIA";
    w.suite = wl::SuiteTag::MLPerf;
    w.graph = gnmtGraph();
    // Variable sequence lengths trim padded timesteps.
    w.graph.scaleWork(0.70);
    w.dataset = wl::wmt17();

    w.convergence.quality_target = "Sacre BLEU score (uncased): 21.80";
    w.convergence.base_epochs = 5.0;
    w.convergence.reference_global_batch = 1024.0;
    w.convergence.penalty_exponent = 0.15;
    w.convergence.eval_overhead = 0.05;

    w.host.cpu_core_us_per_sample = 110.0;
    w.host.framework_dram_bytes = 5.0e9;
    w.host.per_gpu_dram_bytes = 1.6e9;
    w.host.dataset_residency = 1.0;

    w.per_gpu_batch = 128;
    // Sequential LSTM steps leave bubbles to hide communication in,
    // but the 160M-parameter gradients are still substantial: GNMT is
    // the second most topology-sensitive model (Figure 5: 17%).
    w.comm_overlap = 0.75;
    // LSTM backward emits per-timestep gradients throughout the pass,
    // so overlap survives even on staged fabrics (Figure 5: GNMT loses
    // only ~17% on CPU-PCIe systems against XFMR's 42%).
    w.staged_overlap_retention = 0.95;
    // Short per-step GEMMs keep cuDNN's persistent-RNN kernels off the
    // peak tensor-core path.
    w.tc_efficiency = 0.55;
    w.iteration_overhead_us = 4000.0; // per-timestep launches add up
    w.reference_code_derate = 1.14;
    w.validate();
    return w;
}

} // namespace mlps::models
