#include "models/mask_rcnn.h"

#include "models/builders.h"
#include "models/resnet.h"

namespace mlps::models {

wl::OpGraph
maskRcnnGraph()
{
    wl::OpGraph g("MaskRCNN-R50FPN");

    // Backbone: ResNet-50 at the 800x1333-class detection resolution
    // (rounded to 800x1216 to keep stride-32 alignment).
    wl::OpGraph backbone = resnet50Graph(800, 1216, 1000);
    // Drop the classification tail (avgpool/fc/softmax): last 3 ops.
    const auto &ops = backbone.ops();
    for (std::size_t i = 0; i + 3 < ops.size(); ++i)
        g.add(ops[i]);

    // FPN lateral + output convs on C2..C5 pyramid levels.
    struct Level { int h; int w; int c; };
    const Level levels[4] = {
        {200, 304, 256}, {100, 152, 512}, {50, 76, 1024}, {25, 38, 2048},
    };
    for (int i = 0; i < 4; ++i) {
        std::string name = "fpn.p" + std::to_string(i + 2);
        g.add(wl::conv2d(name + ".lateral", levels[i].h, levels[i].w,
                         levels[i].c, 256, 1));
        g.add(wl::conv2d(name + ".out", levels[i].h, levels[i].w, 256,
                         256, 3));
    }

    // RPN: shared 3x3 conv + objectness/box heads over the pyramid
    // (dominated by the P2 level).
    g.add(wl::conv2d("rpn.conv", 200, 304, 256, 256, 3));
    g.add(wl::conv2d("rpn.logits", 200, 304, 256, 3, 1));
    g.add(wl::conv2d("rpn.bbox", 200, 304, 256, 12, 1));

    // RoI heads over 512 proposals: 7x7x256 features -> two 1024 FCs,
    // class/box outputs; mask head: 4 convs + deconv on 14x14x256.
    const double rois = 512.0;
    g.add(wl::pool("roi_align", rois * 7 * 7 * 256));
    g.add(wl::gemm("box_head.fc1", rois, 7 * 7 * 256, 1024));
    g.add(wl::gemm("box_head.fc2", rois, 1024, 1024));
    g.add(wl::gemm("box_head.cls", rois, 1024, 81));
    g.add(wl::gemm("box_head.reg", rois, 1024, 81 * 4));
    for (int i = 0; i < 4; ++i) {
        // Mask-head convs over all RoIs: fold RoI count into the
        // spatial extent (14 x 14*rois).
        g.add(wl::conv2d("mask_head.conv" + std::to_string(i), 14,
                         static_cast<int>(14 * rois), 256, 256, 3));
    }
    g.add(wl::conv2d("mask_head.deconv", 28,
                     static_cast<int>(28 * rois), 256, 256, 2));
    g.add(wl::conv2d("mask_head.pred", 28,
                     static_cast<int>(28 * rois), 256, 81, 1));
    g.add(wl::softmax("loss.total", rois * 81 * 28 * 28));
    return g;
}

wl::WorkloadSpec
mlperfMaskRcnn()
{
    wl::WorkloadSpec w;
    w.abbrev = "MLPf_MRCNN_Py";
    w.domain = "Object Detection (heavy-weight)";
    w.model_name = "Mask RCNN";
    w.framework = "PyTorch";
    w.submitter = "NVIDIA";
    w.suite = wl::SuiteTag::MLPerf;
    w.graph = maskRcnnGraph();
    // The modeled graph assumes every image at the max resolution;
    // real batches mix aspect ratios and skip padded work.
    w.graph.scaleWork(0.2556);
    w.dataset = wl::coco();
    // Detection-resolution inputs: ~800x1216x3 uint8.
    w.dataset.input_bytes_per_sample = 800.0 * 1216.0 * 3.0;

    w.convergence.quality_target = "Box mAP: 0.377, Mask mAP: 0.339";
    w.convergence.base_epochs = 13.0;
    w.convergence.reference_global_batch = 32.0;
    w.convergence.penalty_exponent = 0.18;
    w.convergence.eval_overhead = 0.08;

    w.host.cpu_core_us_per_sample = 9000.0; // large-image decode/resize
    w.host.framework_dram_bytes = 4.5e9;
    w.host.per_gpu_dram_bytes = 2.2e9;
    w.host.dataset_residency = 1.0;

    // Tiny per-GPU batch: the 800px activations fill the 16 GiB card.
    w.per_gpu_batch = 4;
    // Irregular per-step graph (proposal-dependent) overlaps poorly,
    // carries heavy python/launch overhead, under-utilises tensor
    // cores (tiny dynamic shapes), and synchronises badly at scale.
    w.comm_overlap = 0.45;
    w.staged_iteration_penalty = 0.18;
    w.sync_penalty_base = 0.136;
    w.sync_penalty_log = 0.18;
    w.tc_efficiency = 0.36;
    w.iteration_overhead_us = 9000.0;
    w.reference_code_derate = 1.21;
    w.validate();
    return w;
}

} // namespace mlps::models
