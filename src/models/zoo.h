/**
 * @file
 * The model zoo: every workload of the paper's Table II in one place.
 */

#ifndef MLPSIM_MODELS_ZOO_H
#define MLPSIM_MODELS_ZOO_H

#include <optional>
#include <string>
#include <vector>

#include "wl/workload.h"

namespace mlps::models {

/** The six MLPerf training workloads studied (RL is excluded, as in
 *  the paper: no GPU submission existed for it). Order matches
 *  Table II. Includes both ResNet-50 submissions, so seven specs. */
std::vector<wl::WorkloadSpec> mlperfSuite();

/** The two DAWNBench entries. */
std::vector<wl::WorkloadSpec> dawnBenchSuite();

/** The four DeepBench kernels. */
std::vector<wl::WorkloadSpec> deepBenchSuite();

/** All fifteen workloads, MLPerf first. */
std::vector<wl::WorkloadSpec> allWorkloads();

/** Find a workload by its abbreviation (e.g. "MLPf_NCF_Py"). */
std::optional<wl::WorkloadSpec> findWorkload(const std::string &abbrev);

} // namespace mlps::models

#endif // MLPSIM_MODELS_ZOO_H
