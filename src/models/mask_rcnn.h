/**
 * @file
 * MLPf_MRCNN_Py: heavy-weight object detection / instance segmentation
 * (Mask R-CNN with ResNet-50-FPN backbone, NVIDIA's PyTorch
 * submission) on COCO.
 */

#ifndef MLPSIM_MODELS_MASK_RCNN_H
#define MLPSIM_MODELS_MASK_RCNN_H

#include "wl/workload.h"

namespace mlps::models {

/** Bare Mask R-CNN (ResNet-50-FPN, 800px) op graph. */
wl::OpGraph maskRcnnGraph();

/** MLPf_MRCNN_Py workload. */
wl::WorkloadSpec mlperfMaskRcnn();

} // namespace mlps::models

#endif // MLPSIM_MODELS_MASK_RCNN_H
