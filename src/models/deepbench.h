/**
 * @file
 * DeepBench micro-benchmarks (Baidu): raw GEMM, convolution, recurrent
 * and all-reduce kernels, below any framework. Four workloads mirror
 * the paper's selection: gemm_bench, conv_bench, rnn_bench (the six
 * configurations of Table II) and nccl_single_all_reduce.
 */

#ifndef MLPSIM_MODELS_DEEPBENCH_H
#define MLPSIM_MODELS_DEEPBENCH_H

#include "wl/workload.h"

namespace mlps::models {

/** Deep_GEMM_Cu: dense matrix-multiply kernel sweep. */
wl::WorkloadSpec deepbenchGemm();

/** Deep_Conv_Cu: convolution kernel sweep. */
wl::WorkloadSpec deepbenchConv();

/** Deep_RNN_Cu: the six recurrent configurations of Table II. */
wl::WorkloadSpec deepbenchRnn();

/** Deep_Red_Cu: NCCL single-node all-reduce. */
wl::WorkloadSpec deepbenchAllReduce();

} // namespace mlps::models

#endif // MLPSIM_MODELS_DEEPBENCH_H
