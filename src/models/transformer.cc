#include "models/transformer.h"

#include "models/builders.h"

namespace mlps::models {

namespace {

// Transformer "big" hyperparameters (Vaswani et al.), as used by the
// MLPerf v0.5 submission.
constexpr int kDModel = 1024;
constexpr int kDFf = 4096;
constexpr int kLayers = 6;
constexpr int kVocab = 33'000;
// Average WMT17 En-De sentence length after BPE; batches are built in
// tokens, so a "sample" here is one average-length sentence pair.
constexpr int kSeq = 27;

} // namespace

wl::OpGraph
transformerGraph()
{
    wl::OpGraph g("Transformer-big");
    g.add(wl::embedding("src_embed", kVocab, kDModel, kSeq));
    g.add(wl::embedding("tgt_embed", kVocab, kDModel, kSeq));

    for (int l = 0; l < kLayers; ++l) {
        transformerEncoderLayer(g, "enc" + std::to_string(l), kSeq,
                                kDModel, kDFf);
    }
    for (int l = 0; l < kLayers; ++l) {
        transformerDecoderLayer(g, "dec" + std::to_string(l), kSeq, kSeq,
                                kDModel, kDFf);
    }

    // Output projection shares the embedding table; charge its GEMM
    // work but not duplicate parameters.
    wl::Op out = wl::gemm("out_proj", kSeq, kDModel, kVocab);
    out.param_bytes = 0.0;
    g.add(out);
    g.add(wl::softmax("softmax", static_cast<double>(kSeq) * kVocab));
    return g;
}

wl::WorkloadSpec
mlperfTransformer()
{
    wl::WorkloadSpec w;
    w.abbrev = "MLPf_XFMR_Py";
    w.domain = "Translation (non-recurrent)";
    w.model_name = "Transformer";
    w.framework = "PyTorch";
    w.submitter = "NVIDIA";
    w.suite = wl::SuiteTag::MLPerf;
    w.graph = transformerGraph();
    // Padding within token buckets shifts real work slightly.
    w.graph.scaleWork(0.895);
    w.dataset = wl::wmt17();

    w.convergence.quality_target = "BLEU score (uncased): 25";
    w.convergence.base_epochs = 8.0;
    // Reference global batch ~ 490k tokens ~ 9000 sentence pairs.
    w.convergence.reference_global_batch = 9000.0;
    w.convergence.penalty_exponent = 0.15;
    w.convergence.eval_overhead = 0.04;

    w.host.cpu_core_us_per_sample = 90.0; // tokenised text, cheap host
    w.host.framework_dram_bytes = 6.0e9;
    w.host.per_gpu_dram_bytes = 1.8e9;
    w.host.dataset_residency = 1.0;

    // 5120 tokens/GPU ~ 95 average sentence pairs.
    w.per_gpu_batch = 95;
    // 210M parameters -> large gradient all-reduce; overlap is limited
    // by the small layer count late in the backward pass. This is what
    // makes XFMR the most topology-sensitive model (Figure 5: 42%).
    w.comm_overlap = 0.32;
    w.staged_overlap_retention = 0.70;
    // Short sequences cap attention-GEMM tensor-core utilisation.
    w.tc_efficiency = 0.80;
    w.iteration_overhead_us = 2500.0;
    w.reference_code_derate = 0.60;
    w.validate();
    return w;
}

} // namespace mlps::models
