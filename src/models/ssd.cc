#include "models/ssd.h"

#include "models/builders.h"

namespace mlps::models {

wl::OpGraph
ssdGraph()
{
    wl::OpGraph g("SSD300-ResNet34");
    // Backbone: ResNet-34 truncated after conv4 (MLPerf reference keeps
    // the first three stages at stride 1 modification for 38x38 maps).
    SpatialState s{300, 300, 3};
    resnetStem(g, s);
    const int stage_blocks[3] = {3, 4, 6};
    const int stage_width[3] = {64, 128, 256};
    for (int stage = 0; stage < 3; ++stage) {
        for (int block = 0; block < stage_blocks[stage]; ++block) {
            int stride = (block == 0 && stage > 0) ? 2 : 1;
            std::string name = "bb.res" + std::to_string(stage + 2) +
                               "." + std::to_string(block);
            basicBlock(g, name, s, stage_width[stage], stride);
        }
    }

    // Extra feature layers (conv8-conv11): 1x1 reduce + 3x3/2.
    struct Extra { int mid; int out; int stride; };
    const Extra extras[4] = {
        {256, 512, 2}, {256, 512, 2}, {128, 256, 2}, {128, 256, 2},
    };
    for (int i = 0; i < 4; ++i) {
        std::string name = "extra" + std::to_string(i);
        g.add(wl::conv2d(name + ".reduce", s.h, s.w, s.c,
                         extras[i].mid, 1));
        g.add(wl::conv2d(name + ".conv", s.h, s.w, extras[i].mid,
                         extras[i].out, 3, extras[i].stride));
        s.h = (s.h + extras[i].stride - 1) / extras[i].stride;
        s.w = (s.w + extras[i].stride - 1) / extras[i].stride;
        s.c = extras[i].out;
    }

    // Detection heads: loc (4 coords) + conf (81 classes) per anchor,
    // over ~8732 default boxes spread across 6 feature maps. Modeled
    // as 3x3 convs on the two largest maps plus head GEMms.
    g.add(wl::conv2d("head.loc38", 38, 38, 256, 4 * 4, 3));
    g.add(wl::conv2d("head.conf38", 38, 38, 256, 4 * 81, 3));
    g.add(wl::conv2d("head.loc19", 19, 19, 512, 6 * 4, 3));
    g.add(wl::conv2d("head.conf19", 19, 19, 512, 6 * 81, 3));
    g.add(wl::softmax("loss.conf", 8732.0 * 81.0));
    g.add(wl::elementwise("loss.box", 8732.0 * 4.0, 4.0));
    return g;
}

wl::WorkloadSpec
mlperfSsd()
{
    wl::WorkloadSpec w;
    w.abbrev = "MLPf_SSD_Py";
    w.domain = "Object Detection (light-weight)";
    w.model_name = "SSD";
    w.framework = "PyTorch";
    w.submitter = "NVIDIA";
    w.suite = wl::SuiteTag::MLPerf;
    w.graph = ssdGraph();
    // Dense per-anchor heads and matching costs beyond the modeled
    // layer list (calibrated against the v0.5 submission throughput).
    w.graph.scaleWork(0.81);
    w.dataset = wl::coco();

    w.convergence.quality_target = "mAP: 0.212";
    w.convergence.base_epochs = 55.0;
    w.convergence.reference_global_batch = 1024.0;
    w.convergence.penalty_exponent = 0.10;
    w.convergence.eval_overhead = 0.06; // COCO eval every 5 epochs

    // Heavy augmentation (SSD random-crop zoo) but a small dataset.
    w.host.cpu_core_us_per_sample = 1500.0;
    w.host.framework_dram_bytes = 3.5e9;
    w.host.per_gpu_dram_bytes = 1.6e9;
    w.host.dataset_residency = 1.0; // 19 GB stages fully

    w.per_gpu_batch = 152;
    w.comm_overlap = 0.8;
    w.sync_penalty_base = 0.031;
    w.sync_penalty_log = 0.035;
    // 300px feature maps keep cuDNN off the best tensor-core paths.
    w.tc_efficiency = 0.60;
    w.iteration_overhead_us = 1500.0;
    w.reference_code_derate = 1.04; // SSD reference was comparatively tuned
    w.validate();
    return w;
}

} // namespace mlps::models
