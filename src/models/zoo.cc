#include "models/zoo.h"

#include "models/deepbench.h"
#include "models/drqa.h"
#include "models/gnmt.h"
#include "models/mask_rcnn.h"
#include "models/ncf.h"
#include "models/resnet.h"
#include "models/ssd.h"
#include "models/transformer.h"

namespace mlps::models {

std::vector<wl::WorkloadSpec>
mlperfSuite()
{
    return {
        mlperfResnet50TF(), mlperfResnet50MX(), mlperfSsd(),
        mlperfMaskRcnn(),   mlperfTransformer(), mlperfGnmt(),
        mlperfNcf(),
    };
}

std::vector<wl::WorkloadSpec>
dawnBenchSuite()
{
    return {dawnResnet18(), dawnDrqa()};
}

std::vector<wl::WorkloadSpec>
deepBenchSuite()
{
    return {deepbenchGemm(), deepbenchConv(), deepbenchRnn(),
            deepbenchAllReduce()};
}

std::vector<wl::WorkloadSpec>
allWorkloads()
{
    std::vector<wl::WorkloadSpec> all = mlperfSuite();
    for (auto &w : dawnBenchSuite())
        all.push_back(std::move(w));
    for (auto &w : deepBenchSuite())
        all.push_back(std::move(w));
    return all;
}

std::optional<wl::WorkloadSpec>
findWorkload(const std::string &abbrev)
{
    for (auto &w : allWorkloads()) {
        if (w.abbrev == abbrev)
            return w;
    }
    return std::nullopt;
}

} // namespace mlps::models
