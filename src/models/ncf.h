/**
 * @file
 * MLPf_NCF_Py: recommendation with Neural Collaborative Filtering
 * (NeuMF) on MovieLens-20M (NVIDIA's PyTorch submission).
 */

#ifndef MLPSIM_MODELS_NCF_H
#define MLPSIM_MODELS_NCF_H

#include "wl/workload.h"

namespace mlps::models {

/** Bare NeuMF op graph (per interaction sample). */
wl::OpGraph ncfGraph();

/** MLPf_NCF_Py workload. */
wl::WorkloadSpec mlperfNcf();

} // namespace mlps::models

#endif // MLPSIM_MODELS_NCF_H
