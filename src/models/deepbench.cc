#include "models/deepbench.h"

#include "wl/op.h"

namespace mlps::models {

namespace {

/** Shared identity fields of the DeepBench entries. */
wl::WorkloadSpec
deepbenchBase(const std::string &abbrev, const std::string &operation)
{
    wl::WorkloadSpec w;
    w.abbrev = abbrev;
    w.domain = operation;
    w.model_name = operation;
    w.framework = "CUDA";
    w.submitter = "Baidu";
    w.suite = wl::SuiteTag::DeepBench;
    w.mode = wl::RunMode::KernelLoop;
    w.per_gpu_batch = 1;
    w.comm_overlap = 0.0;
    w.iteration_overhead_us = 20.0;
    // Bare CUDA loops: negligible host work, tiny footprints.
    w.host.cpu_core_us_per_sample = 2.0;
    w.host.framework_dram_bytes = 0.3e9;
    w.host.per_gpu_dram_bytes = 0.2e9;
    return w;
}

} // namespace

wl::WorkloadSpec
deepbenchGemm()
{
    wl::WorkloadSpec w = deepbenchBase("Deep_GEMM_Cu",
                                       "Dense Matrix Multiply");
    // Training GEMM sizes from the DeepBench repository (M, N, K).
    struct Shape { double m, n, k; };
    const Shape shapes[] = {
        {1760, 16, 1760},   {1760, 32, 1760},  {1760, 64, 1760},
        {1760, 128, 1760},  {2048, 16, 2048},  {2048, 32, 2048},
        {2048, 64, 2048},   {2048, 128, 2048}, {2560, 64, 2560},
        {2560, 128, 2560},  {4096, 16, 4096},  {4096, 128, 4096},
        {35, 8457, 2560},
    };
    wl::OpGraph g("gemm_bench");
    int i = 0;
    for (const Shape &s : shapes) {
        g.add(wl::gemm("gemm" + std::to_string(i++), s.m, s.k, s.n));
    }
    w.graph = g;
    w.dataset = wl::syntheticKernelData(700e6);
    w.kernel_iterations = 300;
    w.validate();
    return w;
}

wl::WorkloadSpec
deepbenchConv()
{
    wl::WorkloadSpec w = deepbenchBase("Deep_Conv_Cu", "Convolution");
    // Representative conv_bench training shapes (W,H,C,K,R=S,stride).
    struct Shape { int wdt, hgt, c, k, r, stride; };
    const Shape shapes[] = {
        {700, 161, 1, 32, 5, 2},   // DeepSpeech front-end
        {341, 79, 32, 32, 5, 2},
        {112, 112, 64, 128, 3, 1}, // VGG-class
        {56, 56, 128, 256, 3, 1},
        {28, 28, 256, 512, 3, 1},
        {14, 14, 512, 512, 3, 1},
        {7, 7, 512, 512, 3, 1},
        {224, 224, 3, 64, 7, 2},   // ResNet stem
    };
    wl::OpGraph g("conv_bench");
    int i = 0;
    for (const Shape &s : shapes) {
        g.add(wl::conv2d("conv" + std::to_string(i++), s.hgt, s.wdt,
                         s.c, s.k, s.r, s.stride));
    }
    w.graph = g;
    w.dataset = wl::syntheticKernelData(900e6);
    w.kernel_iterations = 300;
    w.validate();
    return w;
}

wl::WorkloadSpec
deepbenchRnn()
{
    wl::WorkloadSpec w = deepbenchBase("Deep_RNN_Cu", "Recurrent");
    // The six rnn_bench configurations listed in Table II.
    wl::OpGraph g("rnn_bench");
    // Vanilla, units=1760, batch 16, t=50 (DeepSpeech)
    g.add(wl::rnn("vanilla_1760", 1, 1760, 1760, 50));
    // GRU, units=2816, batch 32 (DeepSpeech)
    g.add(wl::rnn("gru_2816", 3, 2816, 2816, 50));
    // GRU, units=1024, batch 32 (Speaker ID)
    g.add(wl::rnn("gru_1024", 3, 1024, 1024, 50));
    // LSTM, input=512 (Machine Translation)
    g.add(wl::rnn("lstm_512", 4, 512, 512, 25));
    // LSTM, input=4096 (Language Modeling)
    g.add(wl::rnn("lstm_4096", 4, 4096, 4096, 25));
    // LSTM, input=256 (Character Language Modeling)
    g.add(wl::rnn("lstm_256", 4, 256, 256, 150));
    w.graph = g;
    w.dataset = wl::syntheticKernelData(2.3e9);
    w.kernel_iterations = 60;
    w.validate();
    return w;
}

wl::WorkloadSpec
deepbenchAllReduce()
{
    wl::WorkloadSpec w = deepbenchBase("Deep_Red_Cu",
                                       "Communication (AllReduce)");
    w.mode = wl::RunMode::CollectiveLoop;
    // The kernel side is a trivial reduction; the interesting work is
    // the collective itself.
    wl::OpGraph g("nccl_single_all_reduce");
    g.add(wl::elementwise("reduce_kernel", 16e6, 1.0));
    w.graph = g;
    w.dataset = wl::syntheticKernelData(0.5e9);
    // 64 MB payloads, the large end of the DeepBench sweep where
    // bandwidth (not latency) dominates.
    w.collective_bytes = 64e6;
    w.collective_iterations = 2000;
    w.validate();
    return w;
}

} // namespace mlps::models
