/**
 * @file
 * Residual networks: the MLPerf image-classification benchmark
 * (ResNet-50 v1.5 on ImageNet, TensorFlow and MXNet submissions) and
 * the DAWNBench CIFAR10 entry (bkj's modified ResNet-18).
 */

#ifndef MLPSIM_MODELS_RESNET_H
#define MLPSIM_MODELS_RESNET_H

#include "wl/workload.h"

namespace mlps::models {

/** Bare ResNet-50 op graph at the given input resolution. */
wl::OpGraph resnet50Graph(int h, int w, int classes = 1000);

/** Bare ResNet-34 op graph (SSD backbone) at the given resolution. */
wl::OpGraph resnet34Graph(int h, int w, int classes = 1000);

/** Bare CIFAR-style ResNet-18 op graph (32x32 stem, no 7x7). */
wl::OpGraph resnet18CifarGraph();

/** MLPf_Res50_TF: Google's TensorFlow ResNet-50 submission. */
wl::WorkloadSpec mlperfResnet50TF();

/** MLPf_Res50_MX: NVIDIA's MXNet ResNet-50 submission. */
wl::WorkloadSpec mlperfResnet50MX();

/** Dawn_Res18_Py: DAWNBench CIFAR10 ResNet-18 (bkj). */
wl::WorkloadSpec dawnResnet18();

} // namespace mlps::models

#endif // MLPSIM_MODELS_RESNET_H
