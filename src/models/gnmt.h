/**
 * @file
 * MLPf_GNMT_Py: recurrent neural machine translation (GNMT) on WMT17
 * (NVIDIA's PyTorch submission).
 */

#ifndef MLPSIM_MODELS_GNMT_H
#define MLPSIM_MODELS_GNMT_H

#include "wl/workload.h"

namespace mlps::models {

/** Bare GNMT (4+4 LSTM layers, 1024 hidden) op graph. */
wl::OpGraph gnmtGraph();

/** MLPf_GNMT_Py workload. */
wl::WorkloadSpec mlperfGnmt();

} // namespace mlps::models

#endif // MLPSIM_MODELS_GNMT_H
