/**
 * @file
 * GPU hardware model.
 *
 * GpuSpec captures the datasheet-level capabilities that drive the
 * roofline timing model: per-precision peak FLOP rates, tensor-core
 * rate, HBM2 bandwidth and capacity, form factor and NVLink lane count.
 * Factory functions provide the devices used in the paper (Tesla V100
 * in SXM2 and PCIe form factors, Tesla P100 as the MLPerf v0.5
 * reference machine).
 */

#ifndef MLPSIM_HW_GPU_H
#define MLPSIM_HW_GPU_H

#include <cstdint>
#include <string>

#include "hw/precision.h"

namespace mlps::hw {

/** GPU physical packaging; decides which fabrics it can attach to. */
enum class FormFactor {
    PCIe,
    SXM2,
};

/** Datasheet-level GPU capability description. */
struct GpuSpec {
    std::string name;

    /** Peak double-precision rate, TFLOP/s. */
    double fp64_tflops = 0.0;
    /** Peak single-precision rate, TFLOP/s. */
    double fp32_tflops = 0.0;
    /** Peak half-precision (non-tensor-core) rate, TFLOP/s. */
    double fp16_tflops = 0.0;
    /** Peak tensor-core rate, TFLOP/s; 0 when absent (e.g. P100). */
    double tensor_tflops = 0.0;

    /** HBM2 aggregate bandwidth, GB/s. */
    double hbm_gbps = 0.0;
    /** HBM2 capacity, GiB. */
    double hbm_gib = 0.0;

    FormFactor form = FormFactor::PCIe;

    /** Number of NVLink bricks (0 for PCIe-only parts). */
    int nvlink_lanes = 0;
    /** Unidirectional bandwidth per NVLink brick, GB/s. */
    double nvlink_lane_gbps = 25.0;

    /** Per-kernel launch + sync overhead, microseconds. */
    double launch_overhead_us = 6.0;

    /** Idle board power, watts. */
    double idle_watts = 40.0;
    /** Board power limit (TDP), watts. */
    double tdp_watts = 300.0;

    /**
     * Board power at a given SM utilization (linear interpolation
     * between idle and TDP — the first-order model used by cluster
     * power studies).
     */
    double powerWatts(double util_frac) const;

    /** True when the part has tensor cores. */
    bool hasTensorCores() const { return tensor_tflops > 0.0; }

    /**
     * Peak rate in FLOP/s for the given precision.
     * @param tensor_eligible whether the kernel can map to tensor cores
     *        (dense GEMM/conv contractions); only matters for Mixed.
     */
    double peakFlops(Precision p, bool tensor_eligible) const;

    /** HBM bandwidth in bytes/s. */
    double hbmBytesPerSec() const { return hbm_gbps * 1e9; }

    /** HBM capacity in bytes. */
    double hbmCapacityBytes() const {
        return hbm_gib * 1024.0 * 1024.0 * 1024.0;
    }
};

/** Tesla V100 SXM2, 16 GiB (C4140 K/M). */
GpuSpec teslaV100Sxm2_16();

/** Tesla V100 SXM2, 32 GiB. */
GpuSpec teslaV100Sxm2_32();

/** Tesla V100 PCIe, 16 GiB (C4140 B, DSS 8440). */
GpuSpec teslaV100Pcie_16();

/** Tesla V100 PCIe, 32 GiB (T640, R940xa). */
GpuSpec teslaV100Pcie_32();

/** Tesla P100 PCIe, 16 GiB: the MLPerf v0.5 reference machine's GPU. */
GpuSpec teslaP100Pcie_16();

/** Tesla T4: the low-power inference/lightweight-training part. */
GpuSpec teslaT4();

/** A100 SXM4 40 GiB: the generation after the paper's study. */
GpuSpec a100Sxm4_40();

} // namespace mlps::hw

#endif // MLPSIM_HW_GPU_H
