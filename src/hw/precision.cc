#include "hw/precision.h"

#include "sim/logger.h"

namespace mlps::hw {

std::string
toString(Precision p)
{
    switch (p) {
      case Precision::FP64: return "fp64";
      case Precision::FP32: return "fp32";
      case Precision::FP16: return "fp16";
      case Precision::Mixed: return "mixed";
    }
    sim::panic("toString: bad Precision %d", static_cast<int>(p));
}

int
bytesPerElement(Precision p)
{
    switch (p) {
      case Precision::FP64: return 8;
      case Precision::FP32: return 4;
      case Precision::FP16: return 2;
      case Precision::Mixed: return 2; // activations live in fp16
    }
    sim::panic("bytesPerElement: bad Precision %d", static_cast<int>(p));
}

double
trafficScaleVsFp32(Precision p)
{
    return static_cast<double>(bytesPerElement(p)) / 4.0;
}

} // namespace mlps::hw
