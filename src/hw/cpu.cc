#include "hw/cpu.h"

#include "sim/logger.h"

namespace mlps::hw {

double
CpuSpec::powerWatts(double util_frac) const
{
    if (util_frac < 0.0 || util_frac > 1.0)
        sim::fatal("CpuSpec::powerWatts: utilization %g out of [0,1]",
                   util_frac);
    return idle_watts + (tdp_watts - idle_watts) * util_frac;
}

CpuSpec
xeonGold6148()
{
    CpuSpec c;
    c.name = "Intel Xeon Gold 6148";
    c.cores = 20;
    c.base_ghz = 2.4;
    c.pcie_lanes = 48;
    c.dram = DramSpec{};
    return c;
}

CpuSpec
xeonGold6142()
{
    CpuSpec c;
    c.name = "Intel Xeon Gold 6142";
    c.cores = 16;
    c.base_ghz = 2.6;
    c.pcie_lanes = 48;
    c.dram = DramSpec{};
    return c;
}

} // namespace mlps::hw
