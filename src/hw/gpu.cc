#include "hw/gpu.h"

#include "sim/logger.h"

namespace mlps::hw {

double
GpuSpec::powerWatts(double util_frac) const
{
    if (util_frac < 0.0 || util_frac > 1.0)
        sim::fatal("GpuSpec::powerWatts: utilization %g out of [0,1]",
                   util_frac);
    return idle_watts + (tdp_watts - idle_watts) * util_frac;
}

double
GpuSpec::peakFlops(Precision p, bool tensor_eligible) const
{
    switch (p) {
      case Precision::FP64:
        return fp64_tflops * 1e12;
      case Precision::FP32:
        return fp32_tflops * 1e12;
      case Precision::FP16:
        return fp16_tflops * 1e12;
      case Precision::Mixed:
        if (tensor_eligible && hasTensorCores())
            return tensor_tflops * 1e12;
        // Non-eligible ops still run in fp16 vector units under AMP.
        return fp16_tflops * 1e12;
    }
    sim::panic("GpuSpec::peakFlops: bad precision");
}

GpuSpec
teslaV100Sxm2_16()
{
    GpuSpec g;
    g.name = "Tesla V100-SXM2-16GB";
    g.fp64_tflops = 7.8;
    g.fp32_tflops = 15.7;
    g.fp16_tflops = 31.4;
    g.tensor_tflops = 125.0;
    g.hbm_gbps = 900.0;
    g.hbm_gib = 16.0;
    g.form = FormFactor::SXM2;
    g.nvlink_lanes = 6;
    g.nvlink_lane_gbps = 25.0;
    g.tdp_watts = 300.0;
    return g;
}

GpuSpec
teslaV100Sxm2_32()
{
    GpuSpec g = teslaV100Sxm2_16();
    g.name = "Tesla V100-SXM2-32GB";
    g.hbm_gib = 32.0;
    return g;
}

GpuSpec
teslaV100Pcie_16()
{
    GpuSpec g;
    g.name = "Tesla V100-PCIE-16GB";
    g.fp64_tflops = 7.0;
    g.fp32_tflops = 14.0;
    g.fp16_tflops = 28.0;
    g.tensor_tflops = 112.0;
    g.hbm_gbps = 900.0;
    g.hbm_gib = 16.0;
    g.form = FormFactor::PCIe;
    g.nvlink_lanes = 0;
    g.tdp_watts = 250.0;
    return g;
}

GpuSpec
teslaV100Pcie_32()
{
    GpuSpec g = teslaV100Pcie_16();
    g.name = "Tesla V100-PCIE-32GB";
    g.hbm_gib = 32.0;
    return g;
}

GpuSpec
teslaP100Pcie_16()
{
    GpuSpec g;
    g.name = "Tesla P100-PCIE-16GB";
    g.fp64_tflops = 4.7;
    g.fp32_tflops = 9.3;
    g.fp16_tflops = 18.7;
    g.tensor_tflops = 0.0;
    g.hbm_gbps = 732.0;
    g.hbm_gib = 16.0;
    g.form = FormFactor::PCIe;
    g.nvlink_lanes = 0;
    g.tdp_watts = 250.0;
    return g;
}

GpuSpec
teslaT4()
{
    GpuSpec g;
    g.name = "Tesla T4";
    g.fp64_tflops = 0.25;
    g.fp32_tflops = 8.1;
    g.fp16_tflops = 16.2;
    g.tensor_tflops = 65.0;
    g.hbm_gbps = 320.0; // GDDR6
    g.hbm_gib = 16.0;
    g.form = FormFactor::PCIe;
    g.nvlink_lanes = 0;
    g.idle_watts = 10.0;
    g.tdp_watts = 70.0;
    return g;
}

GpuSpec
a100Sxm4_40()
{
    GpuSpec g;
    g.name = "A100-SXM4-40GB";
    g.fp64_tflops = 9.7;
    g.fp32_tflops = 19.5;
    g.fp16_tflops = 78.0;
    g.tensor_tflops = 312.0; // TF32/FP16 tensor cores
    g.hbm_gbps = 1555.0;
    g.hbm_gib = 40.0;
    g.form = FormFactor::SXM2; // SXM-class socket
    g.nvlink_lanes = 12;
    g.nvlink_lane_gbps = 25.0;
    g.idle_watts = 50.0;
    g.tdp_watts = 400.0;
    return g;
}

} // namespace mlps::hw
