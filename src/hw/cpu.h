/**
 * @file
 * Host CPU and DRAM model.
 *
 * The host side matters to the paper in three ways: CPU utilization
 * scales with GPU count (Table V), the input pipeline (decode/augment)
 * can bottleneck training, and DRAM/UPI bandwidth bounds staged
 * GPU-to-GPU transfers on systems without P2P (Figure 5).
 */

#ifndef MLPSIM_HW_CPU_H
#define MLPSIM_HW_CPU_H

#include <string>

namespace mlps::hw {

/** DDR4 memory subsystem attached to one socket. */
struct DramSpec {
    /** Number of populated DIMMs on this socket. */
    int dimms = 6;
    /** Capacity per DIMM, GiB. */
    double dimm_gib = 16.0;
    /** Channels used (Skylake-SP: up to 6). */
    int channels = 6;
    /** Per-channel unidirectional bandwidth, GB/s (DDR4-2666 ~ 21.3). */
    double channel_gbps = 21.3;

    /** Total capacity in GiB. */
    double capacityGib() const { return dimms * dimm_gib; }

    /** Aggregate bandwidth in GB/s. */
    double bandwidthGbps() const { return channels * channel_gbps; }
};

/** One CPU socket (Intel Xeon Gold class in all Table III systems). */
struct CpuSpec {
    std::string name;
    int cores = 20;
    double base_ghz = 2.4;
    /** PCIe 3.0 lanes provided by this socket. */
    int pcie_lanes = 48;
    /** Idle package power, watts. */
    double idle_watts = 45.0;
    /** Package power limit (TDP), watts. */
    double tdp_watts = 150.0;
    DramSpec dram;

    /** Package power at a utilization fraction (linear model). */
    double powerWatts(double util_frac) const;

    /**
     * Scalar preprocessing throughput proxy: core-GHz available on the
     * socket. The input pipeline model divides per-sample CPU cost by
     * this to get wall time.
     */
    double coreGhzTotal() const { return cores * base_ghz; }
};

/** Intel Xeon Gold 6148: 20 cores @ 2.4 GHz (most Table III systems). */
CpuSpec xeonGold6148();

/** Intel Xeon Gold 6142: 16 cores @ 2.6 GHz (DSS 8440). */
CpuSpec xeonGold6142();

} // namespace mlps::hw

#endif // MLPSIM_HW_CPU_H
