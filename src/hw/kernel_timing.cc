#include "hw/kernel_timing.h"

#include <algorithm>

#include "sim/logger.h"

namespace mlps::hw {

KernelTiming
timeKernel(const GpuSpec &gpu, const KernelProfile &k, Precision p)
{
    if (k.flops < 0.0 || k.bytes < 0.0)
        sim::fatal("timeKernel: negative work (flops=%g bytes=%g)",
                   k.flops, k.bytes);
    if (k.compute_eff <= 0.0 || k.compute_eff > 1.0)
        sim::fatal("timeKernel: compute_eff %g out of (0,1]",
                   k.compute_eff);
    if (k.memory_eff <= 0.0 || k.memory_eff > 1.0)
        sim::fatal("timeKernel: memory_eff %g out of (0,1]", k.memory_eff);

    KernelTiming t;

    double peak = gpu.peakFlops(p, k.tensor_eligible);
    double eff = k.compute_eff;
    bool on_tensor_cores = p == Precision::Mixed && k.tensor_eligible &&
                           gpu.hasTensorCores();
    if (on_tensor_cores)
        eff *= k.tensor_eff_scale;
    t.compute_s = (peak > 0.0) ? k.flops / (peak * eff) : 0.0;

    double traffic = k.bytes * trafficScaleVsFp32(p);
    t.memory_s = traffic / (gpu.hbmBytesPerSec() * k.memory_eff);

    t.overhead_s = gpu.launch_overhead_us * 1e-6;
    return t;
}

double
arithmeticIntensity(const KernelProfile &k, Precision p)
{
    double traffic = k.bytes * trafficScaleVsFp32(p);
    if (traffic <= 0.0)
        return 0.0;
    return k.flops / traffic;
}

double
achievedFlops(const GpuSpec &gpu, const KernelProfile &k, Precision p)
{
    KernelTiming t = timeKernel(gpu, k, p);
    double total = t.total();
    if (total <= 0.0)
        return 0.0;
    return k.flops / total;
}

} // namespace mlps::hw
