/**
 * @file
 * Numeric precision modes used by the training engine.
 */

#ifndef MLPSIM_HW_PRECISION_H
#define MLPSIM_HW_PRECISION_H

#include <string>

namespace mlps::hw {

/**
 * Arithmetic precision of a kernel or of a training run.
 *
 * Mixed is the AMP-style regime of the paper's Figure 3: fp16 storage and
 * tensor-core math for eligible ops, fp32 master weights and reductions.
 */
enum class Precision {
    FP64,
    FP32,
    FP16,
    Mixed,
};

/** Human-readable name ("fp32", "mixed", ...). */
std::string toString(Precision p);

/** Bytes per element for storage in the given precision. */
int bytesPerElement(Precision p);

/**
 * Storage scale factor relative to fp32 for activations/weights moved
 * by a kernel running in the given precision. Mixed stores activations
 * in fp16 (0.5) like FP16; FP64 doubles traffic.
 */
double trafficScaleVsFp32(Precision p);

} // namespace mlps::hw

#endif // MLPSIM_HW_PRECISION_H
