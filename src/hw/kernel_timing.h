/**
 * @file
 * Roofline-style kernel timing model.
 *
 * A kernel is summarised by its floating-point work and its memory
 * traffic (both at fp32 storage baseline); its runtime on a GPU is the
 * max of the compute-limited and the bandwidth-limited time, plus a
 * fixed launch overhead. This is exactly the model behind the paper's
 * Figure 2 roofline and is accurate enough to reproduce the relative
 * behaviour of the training workloads.
 */

#ifndef MLPSIM_HW_KERNEL_TIMING_H
#define MLPSIM_HW_KERNEL_TIMING_H

#include "hw/gpu.h"
#include "hw/precision.h"

namespace mlps::hw {

/** Work/traffic summary of one kernel instance. */
struct KernelProfile {
    /** Floating point operations (multiply-adds count as 2). */
    double flops = 0.0;
    /** Bytes moved to/from HBM at fp32 storage. */
    double bytes = 0.0;
    /** True for dense contractions that can map onto tensor cores. */
    bool tensor_eligible = false;
    /** Fraction of peak FLOPs this kernel class achieves (0..1]. */
    double compute_eff = 0.6;
    /** Fraction of peak bandwidth this kernel class achieves (0..1]. */
    double memory_eff = 0.75;
    /**
     * Additional derating applied when running on tensor cores: TC peak
     * is hard to sustain outside large, well-shaped GEMMs.
     */
    double tensor_eff_scale = 0.55;
};

/** Detailed timing breakdown of one kernel execution. */
struct KernelTiming {
    double compute_s = 0.0;   ///< compute-limited time
    double memory_s = 0.0;    ///< bandwidth-limited time
    double overhead_s = 0.0;  ///< launch/sync overhead
    /** Total modeled duration. */
    double total() const { return std::max(compute_s, memory_s)
                                  + overhead_s; }
    /** True when memory_s dominates compute_s. */
    bool memoryBound() const { return memory_s > compute_s; }
};

/**
 * Model the execution of one kernel on a GPU.
 *
 * @param gpu     the device.
 * @param k       kernel work/traffic summary (fp32-baseline bytes).
 * @param p       precision regime of the run.
 * @return timing breakdown; total() is the modeled duration in seconds.
 */
KernelTiming timeKernel(const GpuSpec &gpu, const KernelProfile &k,
                        Precision p);

/** Arithmetic intensity (FLOPs/byte) at the given precision's traffic. */
double arithmeticIntensity(const KernelProfile &k, Precision p);

/** Achieved FLOP/s of a kernel execution (flops / total time). */
double achievedFlops(const GpuSpec &gpu, const KernelProfile &k,
                     Precision p);

} // namespace mlps::hw

#endif // MLPSIM_HW_KERNEL_TIMING_H
