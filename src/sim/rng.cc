#include "sim/rng.h"

#include <cassert>
#include <cmath>

namespace mlps::sim {

namespace {

/** splitmix64 step: expands a seed into decorrelated state words. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // All-zero state is the one invalid xoshiro state; seed 0 cannot
    // produce it through splitmix64, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x9E3779B97F4A7C15ULL;
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    assert(lo <= hi);
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    assert(n > 0);
    // Debiased modulo via rejection on the top range.
    std::uint64_t threshold = (0ULL - n) % n;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::gaussian()
{
    // Box-Muller; draw u1 away from zero to keep log() finite.
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::lognormalNoise(double sigma)
{
    if (sigma <= 0.0)
        return 1.0;
    return std::exp(sigma * gaussian());
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

Rng
RngStreams::stream(std::string_view label) const
{
    // FNV-1a over the label, decorrelated from the seed through one
    // splitmix64 step so "a"/"b" do not yield adjacent seeds.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : label) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    std::uint64_t x = seed_ ^ h;
    return Rng(splitmix64(x));
}

} // namespace mlps::sim
