#include "sim/time.h"

#include <cmath>
#include <cstdio>

namespace mlps::sim {

SimTime
fromSeconds(double seconds)
{
    if (seconds <= 0.0)
        return 0;
    double ticks = seconds * static_cast<double>(kSecond);
    // Saturate rather than overflow for absurdly long durations
    // (> ~106 days); callers treat this as "effectively forever".
    double max_ticks = 9.2e18;
    if (ticks >= max_ticks)
        return static_cast<SimTime>(max_ticks);
    return static_cast<SimTime>(std::llround(ticks));
}

double
toSeconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

double
toMinutes(SimTime t)
{
    return toSeconds(t) / 60.0;
}

double
toHours(SimTime t)
{
    return toSeconds(t) / 3600.0;
}

std::string
formatTime(SimTime t)
{
    struct Unit {
        const char *suffix;
        double scale;
    };
    static const Unit units[] = {
        {"h", 3600.0}, {"min", 60.0}, {"s", 1.0},
        {"ms", 1e-3}, {"us", 1e-6}, {"ns", 1e-9}, {"ps", 1e-12},
    };
    double secs = toSeconds(t);
    char buf[64];
    for (const auto &u : units) {
        if (secs >= u.scale || u.scale == 1e-12) {
            std::snprintf(buf, sizeof(buf), "%.3g %s", secs / u.scale,
                          u.suffix);
            return buf;
        }
    }
    return "0 s";
}

} // namespace mlps::sim
