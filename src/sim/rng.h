/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * mlpsim never uses std::random_device or global random state: every
 * stochastic component owns an Rng seeded from its parent so whole-suite
 * runs are bit-reproducible. The generator is xoshiro256**, seeded through
 * splitmix64, which is the conventional pairing recommended by the
 * xoshiro authors.
 */

#ifndef MLPSIM_SIM_RNG_H
#define MLPSIM_SIM_RNG_H

#include <cstdint>

namespace mlps::sim {

/**
 * xoshiro256** PRNG with convenience distributions.
 *
 * Not thread-safe; give each thread/component its own instance via fork().
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller, no caching). */
    double gaussian();

    /** Normal deviate with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Log-normal multiplicative noise with median 1.0 and the given
     * sigma of the underlying normal. Used to jitter model timings.
     */
    double lognormalNoise(double sigma);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /**
     * Derive an independent child generator. The child stream is
     * decorrelated from the parent by re-seeding through splitmix64.
     */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace mlps::sim

#endif // MLPSIM_SIM_RNG_H
