/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * mlpsim never uses std::random_device or global random state: every
 * stochastic component owns an Rng seeded from its parent so whole-suite
 * runs are bit-reproducible. The generator is xoshiro256**, seeded through
 * splitmix64, which is the conventional pairing recommended by the
 * xoshiro authors.
 */

#ifndef MLPSIM_SIM_RNG_H
#define MLPSIM_SIM_RNG_H

#include <cstdint>
#include <string_view>

namespace mlps::sim {

/**
 * xoshiro256** PRNG with convenience distributions.
 *
 * Not thread-safe; give each thread/component its own instance via fork().
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller, no caching). */
    double gaussian();

    /** Normal deviate with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Log-normal multiplicative noise with median 1.0 and the given
     * sigma of the underlying normal. Used to jitter model timings.
     */
    double lognormalNoise(double sigma);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /**
     * Derive an independent child generator. The child stream is
     * decorrelated from the parent by re-seeding through splitmix64.
     */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

/**
 * Label-keyed family of decorrelated Rng streams.
 *
 * Rng::fork() derives children by consuming parent state, so the
 * stream a component receives depends on *fork call order* — fine
 * within one component, fragile across subsystems that evolve
 * independently. RngStreams instead derives each stream from
 * (seed, label): `streams.stream("fs")` yields the same generator no
 * matter how many other streams were taken before it, so adding a new
 * consumer never perturbs existing ones. The chaos layer keys its
 * fault schedules this way ("fs", "net", "clock", "requests", ...) to
 * keep soak runs replayable across code changes.
 */
class RngStreams
{
  public:
    explicit RngStreams(std::uint64_t seed) : seed_(seed) {}

    /** The stream named `label`: a pure function of (seed, label). */
    Rng stream(std::string_view label) const;

    std::uint64_t seed() const { return seed_; }

  private:
    std::uint64_t seed_;
};

} // namespace mlps::sim

#endif // MLPSIM_SIM_RNG_H
