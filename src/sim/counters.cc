#include "sim/counters.h"

#include <algorithm>
#include <cmath>

#include "sim/logger.h"

namespace mlps::sim {

void
Sampler::record(double v)
{
    ++n_;
    sum_ += v;
    if (n_ == 1) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
    if (keep_samples_)
        samples_.push_back(v);
}

void
Sampler::reset()
{
    n_ = 0;
    mean_ = m2_ = min_ = max_ = sum_ = 0.0;
    samples_.clear();
}

double
Sampler::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
Sampler::stddev() const
{
    return std::sqrt(variance());
}

double
Sampler::percentile(double p) const
{
    if (!keep_samples_)
        fatal("Sampler '%s': percentile needs retained samples",
              name_.c_str());
    if (samples_.empty())
        fatal("Sampler '%s': percentile of empty sampler", name_.c_str());
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double clamped = std::clamp(p, 0.0, 100.0);
    double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void
TimeWeightedAverage::set(SimTime t, double value)
{
    if (!started_) {
        started_ = true;
        first_ = last_ = t;
        value_ = value;
        return;
    }
    if (t < last_)
        fatal("TimeWeightedAverage '%s': time went backwards",
              name_.c_str());
    integral_ += value_ * toSeconds(t - last_);
    last_ = t;
    value_ = value;
}

double
TimeWeightedAverage::average(SimTime t_end) const
{
    if (!started_ || t_end <= first_)
        return 0.0;
    double tail = (t_end > last_) ? value_ * toSeconds(t_end - last_) : 0.0;
    return (integral_ + tail) / toSeconds(t_end - first_);
}

} // namespace mlps::sim
