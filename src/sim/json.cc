#include "sim/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mlps::sim {

namespace {

/** Recursive-descent JSON parser over one document. */
class Parser
{
  public:
    Parser(const std::string &text, const JsonLimits &limits,
           std::string *error)
        : s_(text), limits_(limits), error_(error) {}

    bool
    parseDocument(JsonValue *out)
    {
        if (limits_.max_bytes > 0 && s_.size() > limits_.max_bytes) {
            pos_ = limits_.max_bytes;
            return fail("document too large");
        }
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != s_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &why)
    {
        if (error_ && error_->empty()) {
            char where[32];
            std::snprintf(where, sizeof(where), " at byte %zu", pos_);
            *error_ = why + where;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            return fail("unrecognized token");
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue *out, int depth)
    {
        if (depth > limits_.max_depth)
            return fail("nesting too deep");
        if (limits_.max_tokens > 0 && ++tokens_ > limits_.max_tokens)
            return fail("too many tokens");
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        out->offset = pos_;
        switch (s_[pos_]) {
        case '{':
            return parseObject(out, depth);
        case '[':
            return parseArray(out, depth);
        case '"':
            out->kind = JsonValue::Kind::String;
            return parseString(&out->str);
        case 't':
            out->kind = JsonValue::Kind::Bool;
            out->boolean = true;
            return literal("true");
        case 'f':
            out->kind = JsonValue::Kind::Bool;
            out->boolean = false;
            return literal("false");
        case 'n':
            out->kind = JsonValue::Kind::Null;
            return literal("null");
        default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue *out, int depth)
    {
        out->kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue value;
            if (!parseValue(&value, depth + 1))
                return false;
            out->object.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue *out, int depth)
    {
        out->kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue value;
            if (!parseValue(&value, depth + 1))
                return false;
            out->array.push_back(std::move(value));
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string *out)
    {
        ++pos_; // '"'
        out->clear();
        while (pos_ < s_.size()) {
            unsigned char c = static_cast<unsigned char>(s_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= s_.size())
                    return fail("truncated escape");
                char e = s_[pos_ + 1];
                pos_ += 2;
                switch (e) {
                case '"': *out += '"'; break;
                case '\\': *out += '\\'; break;
                case '/': *out += '/'; break;
                case 'b': *out += '\b'; break;
                case 'f': *out += '\f'; break;
                case 'n': *out += '\n'; break;
                case 'r': *out += '\r'; break;
                case 't': *out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > s_.size())
                        return fail("truncated \\u escape");
                    unsigned int cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = s_[pos_ + i];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    pos_ += 4;
                    // UTF-8 encode the BMP code point (surrogate
                    // pairs are not reassembled; each half encodes
                    // independently, which is lossy but safe).
                    if (cp < 0x80) {
                        *out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        *out += static_cast<char>(0xc0 | (cp >> 6));
                        *out +=
                            static_cast<char>(0x80 | (cp & 0x3f));
                    } else {
                        *out += static_cast<char>(0xe0 | (cp >> 12));
                        *out += static_cast<char>(
                            0x80 | ((cp >> 6) & 0x3f));
                        *out +=
                            static_cast<char>(0x80 | (cp & 0x3f));
                    }
                    break;
                }
                default:
                    return fail("unknown escape");
                }
                continue;
            }
            if (c < 0x20)
                return fail("unescaped control character");
            *out += static_cast<char>(c);
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue *out)
    {
        const char *start = s_.c_str() + pos_;
        char *end = nullptr;
        errno = 0;
        double v = std::strtod(start, &end);
        if (end == start)
            return fail("expected a value");
        if (limits_.strict_numbers) {
            // strtod accepts inf/nan spellings, hex floats and a
            // leading '+'; none of those are JSON, and an overflowing
            // literal must not smuggle an infinity past validation.
            char c0 = *start;
            if ((c0 != '-' && !std::isdigit(
                                  static_cast<unsigned char>(c0))) ||
                !std::isfinite(v))
                return fail("bad number");
            const char *digits = c0 == '-' ? start + 1 : start;
            if (digits[0] == '0' &&
                (digits[1] == 'x' || digits[1] == 'X'))
                return fail("bad number");
        }
        out->kind = JsonValue::Kind::Number;
        out->number = v;
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    const std::string &s_;
    const JsonLimits &limits_;
    std::string *error_;
    std::size_t pos_ = 0;
    std::size_t tokens_ = 0;
};

} // namespace

bool
JsonValue::parse(const std::string &text, JsonValue *out,
                 std::string *error)
{
    return parse(text, JsonLimits{}, out, error);
}

bool
JsonValue::parse(const std::string &text, const JsonLimits &limits,
                 JsonValue *out, std::string *error)
{
    if (error)
        error->clear();
    Parser p(text, limits, error);
    return p.parseDocument(out);
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += static_cast<char>(c);
        } else if (c == '\n') {
            out += "\\n";
        } else if (c == '\t') {
            out += "\\t";
        } else if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out;
}

std::string
jsonDouble(double v)
{
    if (!std::isfinite(v)) // NaN/inf are not JSON; error paths carry
        return "0";        // their value in `what`, not in cells
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
jsonLineCol(const std::string &text, std::size_t offset,
            int *line, int *col)
{
    int l = 1, c = 1;
    std::size_t end = offset < text.size() ? offset : text.size();
    for (std::size_t i = 0; i < end; ++i) {
        if (text[i] == '\n') {
            ++l;
            c = 1;
        } else {
            ++c;
        }
    }
    *line = l;
    *col = c;
}

} // namespace mlps::sim
