/**
 * @file
 * Statistic counters and samplers, in the spirit of gem5's stats package.
 *
 * Counter accumulates monotone totals (bytes moved, flops executed);
 * Sampler accumulates a stream of observations and reports mean /
 * min / max / stddev / percentiles; TimeWeightedAverage integrates a
 * piecewise-constant signal over simulated time (e.g. utilization).
 */

#ifndef MLPSIM_SIM_COUNTERS_H
#define MLPSIM_SIM_COUNTERS_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace mlps::sim {

/** Monotone accumulator with a name, for bookkeeping totals. */
class Counter
{
  public:
    explicit Counter(std::string name = "") : name_(std::move(name)) {}

    void add(double v) { total_ += v; ++events_; }
    void reset() { total_ = 0.0; events_ = 0; }

    double total() const { return total_; }
    std::uint64_t events() const { return events_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    double total_ = 0.0;
    std::uint64_t events_ = 0;
};

/** Streaming sample statistics (Welford) plus retained samples. */
class Sampler
{
  public:
    explicit Sampler(std::string name = "", bool keep_samples = true)
        : name_(std::move(name)), keep_samples_(keep_samples) {}

    /** Record one observation. */
    void record(double v);

    /** Remove all observations. */
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /**
     * p-th percentile (0..100) by linear interpolation over the sorted
     * retained samples. Requires keep_samples and at least one sample.
     */
    double percentile(double p) const;

    const std::string &name() const { return name_; }
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::string name_;
    bool keep_samples_;
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
    std::vector<double> samples_;
};

/**
 * Integrates a piecewise-constant signal over simulated time.
 *
 * set(t, v) declares that the signal takes value v from time t onward;
 * average(t_end) returns the time-weighted mean over [t_first, t_end].
 */
class TimeWeightedAverage
{
  public:
    explicit TimeWeightedAverage(std::string name = "")
        : name_(std::move(name)) {}

    /** Declare the signal value from time t onward. t must not decrease. */
    void set(SimTime t, double value);

    /** Time-weighted average over the observed window ending at t_end. */
    double average(SimTime t_end) const;

    /** Most recently set value. */
    double current() const { return value_; }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    bool started_ = false;
    SimTime first_ = 0;
    SimTime last_ = 0;
    double value_ = 0.0;
    double integral_ = 0.0;
};

} // namespace mlps::sim

#endif // MLPSIM_SIM_COUNTERS_H
