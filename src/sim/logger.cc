#include "sim/logger.h"

#include <cstdio>
#include <cstdlib>

namespace mlps::sim {

namespace {

LogLevel g_level = LogLevel::Warn;

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(ap2);
    return out;
}

void
emit(const char *tag, const char *fmt, std::va_list ap)
{
    std::string msg = vformat(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Info)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    emit("debug", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace mlps::sim
