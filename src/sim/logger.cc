#include "sim/logger.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mlps::sim {

namespace {

// Atomic: worker threads (executor jobs, the serve loop) consult the
// level while tests and the CLI may adjust it; relaxed ordering is
// enough for a monotone verbosity gate.
std::atomic<LogLevel> g_level{LogLevel::Warn};

std::mutex g_structured_mu;
std::FILE *g_structured = nullptr;

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(ap2);
    return out;
}

double
monotonicUs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration<double, std::micro>(clock::now() -
                                                     epoch)
        .count();
}

std::string
jsonEscapeLog(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += static_cast<char>(c);
        } else if (c == '\n') {
            out += "\\n";
        } else if (c == '\t') {
            out += "\\t";
        } else if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out;
}

bool
identChar(unsigned char c)
{
    return std::isalnum(c) || c == '_' || c == '.' || c == '-';
}

/**
 * Split the conventional "component: message" prefix: the component
 * must be a single identifier-ish token, else the whole string is the
 * message.
 */
void
splitComponent(const std::string &text, std::string *component,
               std::string *msg)
{
    std::size_t colon = text.find(": ");
    if (colon != std::string::npos && colon > 0 &&
        colon <= 32) { // long prefixes are prose, not components
        bool ident = true;
        for (std::size_t i = 0; i < colon; ++i)
            if (!identChar(static_cast<unsigned char>(text[i])))
                ident = false;
        if (ident) {
            *component = text.substr(0, colon);
            *msg = text.substr(colon + 2);
            return;
        }
    }
    component->clear();
    *msg = text;
}

/** Collect key=value tokens ("retries=3, backoff=0.5s") from a message. */
std::string
fieldsJson(const std::string &msg)
{
    std::string out;
    std::size_t i = 0;
    while (i < msg.size()) {
        // A key starts a token: preceded by start/space/'(' or ','.
        if (i > 0 && msg[i - 1] != ' ' && msg[i - 1] != '(' &&
            msg[i - 1] != ',') {
            ++i;
            continue;
        }
        std::size_t k = i;
        while (k < msg.size() &&
               (std::isalnum(static_cast<unsigned char>(msg[k])) ||
                msg[k] == '_'))
            ++k;
        if (k == i || k >= msg.size() || msg[k] != '=' ||
            k + 1 >= msg.size() || msg[k + 1] == ' ') {
            i = k + 1;
            continue;
        }
        std::size_t v = k + 1;
        while (v < msg.size() && msg[v] != ' ' && msg[v] != ',' &&
               msg[v] != ')')
            ++v;
        if (!out.empty())
            out += ", ";
        out += "\"" + jsonEscapeLog(msg.substr(i, k - i)) + "\": \"" +
               jsonEscapeLog(msg.substr(k + 1, v - k - 1)) + "\"";
        i = v + 1;
    }
    return out;
}

void
emitStructured(const char *level, const std::string &text)
{
    std::lock_guard<std::mutex> lock(g_structured_mu);
    if (!g_structured)
        return;
    std::string component, msg;
    splitComponent(text, &component, &msg);
    std::string fields = fieldsJson(msg);
    std::fprintf(g_structured,
                 "{\"ts_us\": %.1f, \"level\": \"%s\", "
                 "\"component\": \"%s\", \"msg\": \"%s\"",
                 monotonicUs(), level,
                 jsonEscapeLog(component).c_str(),
                 jsonEscapeLog(msg).c_str());
    if (!fields.empty())
        std::fprintf(g_structured, ", \"fields\": {%s}",
                     fields.c_str());
    std::fprintf(g_structured, "}\n");
    std::fflush(g_structured);
}

void
emit(const char *tag, const char *fmt, std::va_list ap)
{
    std::string msg = vformat(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    emitStructured(tag, msg);
}

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

void
setStructuredLogFile(const std::string &path)
{
    std::FILE *next = nullptr;
    if (!path.empty()) {
        next = std::fopen(path.c_str(), "w");
        if (!next)
            fatal("structured log '%s': cannot open for writing",
                  path.c_str());
    }
    std::lock_guard<std::mutex> lock(g_structured_mu);
    if (g_structured)
        std::fclose(g_structured);
    g_structured = next;
}

bool
structuredLogEnabled()
{
    std::lock_guard<std::mutex> lock(g_structured_mu);
    return g_structured != nullptr;
}

void
inform(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Info)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Debug)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    emit("debug", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitStructured("fatal", msg);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    emitStructured("panic", msg);
    std::abort();
}

} // namespace mlps::sim
