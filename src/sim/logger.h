/**
 * @file
 * Lightweight leveled logging for simulator components.
 *
 * Modeled on gem5's inform/warn/fatal family: informational messages go
 * to stderr behind a global verbosity gate, fatal() raises a FatalError
 * (user error: bad configuration), and panic() aborts (simulator bug).
 */

#ifndef MLPSIM_SIM_LOGGER_H
#define MLPSIM_SIM_LOGGER_H

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace mlps::sim {

/** Verbosity levels, lowest first. */
enum class LogLevel {
    Silent = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
};

/** Error thrown by fatal(): invalid user input or configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Get the process-wide log level (default Warn). */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

/**
 * Mirror every log line (including fatal/panic, which always mirror
 * regardless of the verbosity gate) into `path` as structured JSON
 * lines, one object per line:
 *
 *   {"ts_us": <monotonic us since process start>, "level": "warn",
 *    "component": "engine", "msg": "...", "fields": {"k": "v", ...}}
 *
 * The component is parsed from the conventional "component: message"
 * prefix the call sites already use, and `fields` collects key=value
 * tokens found in the message — so the existing printf API gains
 * structure without any call-site churn. An empty path disables the
 * mirror (and closes the file). fatal() on an unwritable path.
 */
void setStructuredLogFile(const std::string &path);

/** Whether a structured mirror is currently open. */
bool structuredLogEnabled();

/** printf-style informational message, shown at Info and above. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style warning, shown at Warn and above. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style debug message, shown at Debug and above. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad config, invalid argument) by
 * throwing FatalError. Callers can catch it at the tool boundary.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (a simulator bug) and abort.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace mlps::sim

#endif // MLPSIM_SIM_LOGGER_H
