#include "sim/event_queue.h"

#include <memory>
#include <unordered_set>

#include "sim/logger.h"

namespace mlps::sim {

namespace {

/** Dead-entry count above which the storage pool is compacted. */
constexpr std::size_t kCompactThreshold = 1024;

} // namespace

void
EventQueue::maybeCompact()
{
    // Reclaim only when the dead entries both exceed the threshold and
    // dominate the pool, so compaction cost amortises to O(1)/event.
    if (dead_ < kCompactThreshold || dead_ < storage_.size() / 2)
        return;
    std::erase_if(storage_, [](const std::unique_ptr<Entry> &e) {
        return e->cancelled || !e->fn;
    });
    // The heap holds raw pointers into the pool; rebuild it from the
    // survivors (every live entry is pending, so all belong in it).
    std::vector<Entry *> pending;
    pending.reserve(storage_.size());
    for (const auto &entry : storage_)
        pending.push_back(entry.get());
    heap_ = std::priority_queue<Entry *, std::vector<Entry *>, Later>(
        Later{}, std::move(pending));
    dead_ = 0;
}

EventId
EventQueue::schedule(SimTime when, EventFn fn)
{
    if (when < 0)
        fatal("EventQueue::schedule: negative time %lld",
              static_cast<long long>(when));
    maybeCompact();
    auto entry = std::make_unique<Entry>();
    entry->when = when;
    entry->seq = next_seq_++;
    entry->id = next_id_++;
    entry->fn = std::move(fn);
    heap_.push(entry.get());
    storage_.push_back(std::move(entry));
    ++live_;
    return storage_.back()->id;
}

bool
EventQueue::cancel(EventId id)
{
    // Linear scan over the storage pool; cancellation is rare in our
    // models (only used for pipeline aborts), so simplicity wins.
    for (auto &entry : storage_) {
        if (entry->id == id && !entry->cancelled && entry->fn) {
            entry->cancelled = true;
            --live_;
            ++dead_;
            return true;
        }
    }
    return false;
}

void
EventQueue::skipCancelled() const
{
    while (!heap_.empty() && heap_.top()->cancelled)
        heap_.pop();
}

bool
EventQueue::empty() const
{
    skipCancelled();
    return heap_.empty();
}

SimTime
EventQueue::nextTime() const
{
    skipCancelled();
    return heap_.empty() ? -1 : heap_.top()->when;
}

bool
EventQueue::runOne(SimTime &now_out)
{
    maybeCompact();
    skipCancelled();
    if (heap_.empty())
        return false;
    Entry *e = heap_.top();
    heap_.pop();
    now_out = e->when;
    EventFn fn = std::move(e->fn);
    e->fn = nullptr;
    --live_;
    ++dead_;
    // The handler may schedule (and thereby compact); e is dead and
    // must not be touched past this point.
    fn();
    return true;
}

EventId
Simulation::schedule(SimTime delay, EventFn fn)
{
    if (delay < 0)
        fatal("Simulation::schedule: negative delay %lld",
              static_cast<long long>(delay));
    return queue_.schedule(now_ + delay, std::move(fn));
}

EventId
Simulation::scheduleAt(SimTime when, EventFn fn)
{
    if (when < now_)
        fatal("Simulation::scheduleAt: time %lld is in the past (now %lld)",
              static_cast<long long>(when), static_cast<long long>(now_));
    return queue_.schedule(when, std::move(fn));
}

SimTime
Simulation::run()
{
    // Advance the clock before dispatching so handlers observe now()
    // as their own timestamp.
    while (!queue_.empty()) {
        now_ = queue_.nextTime();
        SimTime t = now_;
        queue_.runOne(t);
        ++events_run_;
    }
    return now_;
}

SimTime
Simulation::runUntil(SimTime deadline)
{
    while (!queue_.empty() && queue_.nextTime() <= deadline) {
        now_ = queue_.nextTime();
        SimTime t = now_;
        queue_.runOne(t);
        ++events_run_;
    }
    if (now_ < deadline)
        now_ = deadline;
    return now_;
}

} // namespace mlps::sim
