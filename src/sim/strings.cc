#include "sim/strings.h"

#include <algorithm>
#include <cctype>

namespace mlps::sim {

namespace {

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return out;
}

/** Classic two-row Levenshtein edit distance. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t sub = prev[j - 1] + (a[i - 1] != b[j - 1]);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

} // namespace

std::vector<std::string>
closestNames(const std::string &query,
             const std::vector<std::string> &candidates,
             std::size_t max_results)
{
    // A suggestion further than about a third of the query away is
    // noise, not help.
    std::string q = lowered(query);
    std::size_t cutoff = std::max<std::size_t>(2, q.size() / 3);
    std::vector<std::pair<std::size_t, std::string>> scored;
    for (const auto &cand : candidates) {
        std::size_t d = editDistance(q, lowered(cand));
        // Substring hits are good suggestions even at high distance
        // (e.g. "resnet" against "MLPf_Res50_TF" abbreviations).
        bool contains = !q.empty() &&
                        lowered(cand).find(q) != std::string::npos;
        if (d <= cutoff || contains)
            scored.emplace_back(contains ? 0 : d, cand);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    std::vector<std::string> out;
    for (const auto &[d, name] : scored) {
        if (out.size() >= max_results)
            break;
        out.push_back(name);
    }
    return out;
}

std::string
didYouMean(const std::string &query,
           const std::vector<std::string> &candidates)
{
    auto close = closestNames(query, candidates);
    if (close.empty())
        return "";
    std::string out = " (did you mean ";
    for (std::size_t i = 0; i < close.size(); ++i) {
        if (i)
            out += i + 1 == close.size() ? " or " : ", ";
        out += "'" + close[i] + "'";
    }
    out += "?)";
    return out;
}

} // namespace mlps::sim
