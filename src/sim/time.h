/**
 * @file
 * Simulated-time representation for mlpsim.
 *
 * All simulator components exchange time as SimTime, an integral number of
 * picoseconds. Integral time keeps event ordering exact and reproducible;
 * helpers convert to/from floating-point seconds for model arithmetic.
 */

#ifndef MLPSIM_SIM_TIME_H
#define MLPSIM_SIM_TIME_H

#include <cstdint>
#include <string>

namespace mlps::sim {

/** Simulated time in picoseconds. */
using SimTime = std::int64_t;

/** One picosecond, the base tick. */
inline constexpr SimTime kPicosecond = 1;
/** One nanosecond in ticks. */
inline constexpr SimTime kNanosecond = 1'000;
/** One microsecond in ticks. */
inline constexpr SimTime kMicrosecond = 1'000'000;
/** One millisecond in ticks. */
inline constexpr SimTime kMillisecond = 1'000'000'000;
/** One second in ticks. */
inline constexpr SimTime kSecond = 1'000'000'000'000;
/** One minute in ticks. */
inline constexpr SimTime kMinute = 60 * kSecond;
/** One hour in ticks. */
inline constexpr SimTime kHour = 60 * kMinute;

/**
 * Convert a duration in seconds to SimTime ticks, rounding to nearest.
 *
 * Negative durations are clamped to zero: models occasionally produce
 * tiny negative values from floating-point cancellation and a negative
 * delay is never meaningful.
 */
SimTime fromSeconds(double seconds);

/** Convert ticks to seconds. */
double toSeconds(SimTime t);

/** Convert ticks to minutes. */
double toMinutes(SimTime t);

/** Convert ticks to hours. */
double toHours(SimTime t);

/**
 * Render a time as a compact human-readable string, e.g. "3.42 ms",
 * "17.1 min". Chooses the largest unit that keeps the value >= 1.
 */
std::string formatTime(SimTime t);

} // namespace mlps::sim

#endif // MLPSIM_SIM_TIME_H
