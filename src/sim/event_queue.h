/**
 * @file
 * Discrete-event simulation core.
 *
 * EventQueue keeps a time-ordered set of callbacks; Simulation owns a
 * queue plus the current clock and provides run-to-completion /
 * run-until semantics. Events scheduled at the same tick fire in
 * insertion order (FIFO within a tick), which keeps component
 * interactions deterministic.
 */

#ifndef MLPSIM_SIM_EVENT_QUEUE_H
#define MLPSIM_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace mlps::sim {

/** Callback invoked when an event fires. */
using EventFn = std::function<void()>;

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/**
 * Time-ordered event queue with stable FIFO ordering within a tick.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /**
     * Schedule fn at absolute time when.
     * @return handle usable with cancel().
     */
    EventId schedule(SimTime when, EventFn fn);

    /** Cancel a pending event. Returns false if already fired/cancelled. */
    bool cancel(EventId id);

    /** True if no live events remain. */
    bool empty() const;

    /** Number of live (non-cancelled, unfired) events. */
    std::size_t size() const { return live_; }

    /**
     * Entries currently held in the storage pool, live plus
     * not-yet-reclaimed dead ones. Bounded: once dead entries pass a
     * threshold the pool is compacted, so long-running simulations
     * do not accumulate fired/cancelled entries forever.
     */
    std::size_t storageSize() const { return storage_.size(); }

    /** Time of the earliest live event; undefined when empty(). */
    SimTime nextTime() const;

    /**
     * Pop and run the earliest event.
     * @param now_out receives the event's timestamp.
     * @return false when the queue is empty.
     */
    bool runOne(SimTime &now_out);

  private:
    struct Entry {
        SimTime when;
        std::uint64_t seq;
        EventId id;
        EventFn fn;
        bool cancelled = false;
    };

    struct Later {
        bool operator()(const Entry *a, const Entry *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    void skipCancelled() const;
    void maybeCompact();

    // Heap of raw pointers into storage_; storage_ is a deque-like pool
    // so pointers stay valid.
    mutable std::priority_queue<Entry *, std::vector<Entry *>, Later> heap_;
    std::vector<std::unique_ptr<Entry>> storage_;
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
    std::size_t live_ = 0;
    std::size_t dead_ = 0; ///< fired/cancelled entries still pooled
};

/**
 * A clock plus an event queue: the top-level driver for event-based
 * sub-simulations (e.g. the link-level all-reduce model).
 */
class Simulation
{
  public:
    Simulation() = default;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Schedule fn after a non-negative delay from now. */
    EventId schedule(SimTime delay, EventFn fn);

    /** Schedule fn at an absolute time >= now. */
    EventId scheduleAt(SimTime when, EventFn fn);

    /** Cancel a pending event. */
    bool cancel(EventId id) { return queue_.cancel(id); }

    /** Run until the queue drains. Returns the final time. */
    SimTime run();

    /**
     * Run until the queue drains or the clock passes deadline.
     * Events strictly after deadline stay queued.
     */
    SimTime runUntil(SimTime deadline);

    /** Number of events executed so far. */
    std::uint64_t eventsRun() const { return events_run_; }

    /** True if no events are pending. */
    bool idle() const { return queue_.empty(); }

  private:
    EventQueue queue_;
    SimTime now_ = 0;
    std::uint64_t events_run_ = 0;
};

} // namespace mlps::sim

#endif // MLPSIM_SIM_EVENT_QUEUE_H
