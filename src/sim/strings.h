/**
 * @file
 * Small string utilities shared across layers: edit-distance-based
 * "did you mean" suggestions for unknown-name diagnostics. Lives in
 * sim/ so the lower layers (net/, sys/) can produce the same
 * suggestion style as core/ without depending on it.
 */

#ifndef MLPSIM_SIM_STRINGS_H
#define MLPSIM_SIM_STRINGS_H

#include <string>
#include <vector>

namespace mlps::sim {

/**
 * The candidates closest to `query` by edit distance — "did you
 * mean" material for unknown-name diagnostics. Case-insensitive;
 * only plausibly-close candidates are returned, nearest first.
 */
std::vector<std::string>
closestNames(const std::string &query,
             const std::vector<std::string> &candidates,
             std::size_t max_results = 3);

/**
 * Format a "did you mean" clause from closestNames() output; empty
 * string when there is nothing worth suggesting.
 */
std::string didYouMean(const std::string &query,
                       const std::vector<std::string> &candidates);

} // namespace mlps::sim

#endif // MLPSIM_SIM_STRINGS_H
