/**
 * @file
 * Shared bounded JSON parser.
 *
 * One recursive-descent parser serves every consumer of untrusted
 * JSON in the tree: the serve wire protocol (line-delimited requests)
 * and the workload importer (whole files). Budgets are explicit —
 * nesting depth, document bytes and token count — so hostile input
 * fails with a one-line diagnostic instead of recursing or allocating
 * away. Every parsed node carries the byte offset it started at,
 * which the importer maps to line/column for its diagnostics.
 *
 * The default-limit parse() overload is byte-compatible with the
 * parser that historically lived in serve/protocol.cc: same depth
 * ceiling (32), same error strings ("<why> at byte N"), same lenient
 * strtod number grammar. Consumers of untrusted files should pass
 * JsonLimits with strict_numbers and byte/token budgets instead.
 */

#ifndef MLPSIM_SIM_JSON_H
#define MLPSIM_SIM_JSON_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace mlps::sim {

/** Parse budgets; zero means "no limit" for the size-type fields. */
struct JsonLimits {
    /** Nesting ceiling; hostile input fails instead of recursing away. */
    int max_depth = 32;
    /** Document size ceiling in bytes (0 = unlimited). */
    std::size_t max_bytes = 0;
    /** Ceiling on parsed values (0 = unlimited). */
    std::size_t max_tokens = 0;
    /**
     * Reject numbers outside the JSON grammar: strtod extensions
     * (inf, nan, hex floats) and values that overflow to infinity.
     * Off by default for wire-protocol compatibility.
     */
    bool strict_numbers = false;
};

/** Parsed JSON value (object keys keep insertion order). */
struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Object, Array };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<std::pair<std::string, JsonValue>> object;
    std::vector<JsonValue> array;
    /** Byte offset of the value's first character in the document. */
    std::size_t offset = 0;

    /**
     * Parse a complete JSON document under the default (serve-
     * compatible) limits. @return false + error on junk.
     */
    static bool parse(const std::string &text, JsonValue *out,
                      std::string *error);

    /** Parse under explicit budgets. */
    static bool parse(const std::string &text, const JsonLimits &limits,
                      JsonValue *out, std::string *error);

    /** Object member by key; null when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNull() const { return kind == Kind::Null; }
};

/** JSON string escaping (quotes not included). */
std::string jsonEscape(const std::string &s);

/** Shortest round-trip rendering of a double (%.17g, bit-exact). */
std::string jsonDouble(double v);

/**
 * Map a byte offset to 1-based line and column (tabs count one
 * column; offsets past the end clamp to the last position).
 */
void jsonLineCol(const std::string &text, std::size_t offset,
                 int *line, int *col);

} // namespace mlps::sim

#endif // MLPSIM_SIM_JSON_H
