#include "stats/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <sstream>

#include "sim/logger.h"

namespace mlps::stats {

Matrix
pairwiseDistances(const Matrix &samples)
{
    int n = samples.rows();
    Matrix d(n, n);
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            double acc = 0.0;
            for (int c = 0; c < samples.cols(); ++c) {
                double diff = samples.at(i, c) - samples.at(j, c);
                acc += diff * diff;
            }
            double dist = std::sqrt(acc);
            d.at(i, j) = dist;
            d.at(j, i) = dist;
        }
    }
    return d;
}

Dendrogram
agglomerate(const Matrix &samples, Linkage linkage)
{
    int n = samples.rows();
    if (n < 2)
        sim::fatal("agglomerate: need at least 2 observations");
    Matrix dist = pairwiseDistances(samples);

    Dendrogram out;
    out.num_leaves = n;

    // active[i]: node id (leaf < n, else n + merge index) or -1.
    // members[i]: leaf indices under active cluster i.
    std::vector<int> node_id(n);
    std::vector<std::vector<int>> members(n);
    std::vector<bool> alive(n, true);
    for (int i = 0; i < n; ++i) {
        node_id[i] = i;
        members[i] = {i};
    }

    auto cluster_distance = [&](int a, int b) {
        double best = linkage == Linkage::Complete
                          ? 0.0
                          : std::numeric_limits<double>::infinity();
        double sum = 0.0;
        int count = 0;
        for (int x : members[a]) {
            for (int y : members[b]) {
                double d = dist.at(x, y);
                switch (linkage) {
                  case Linkage::Single:
                    best = std::min(best, d);
                    break;
                  case Linkage::Complete:
                    best = std::max(best, d);
                    break;
                  case Linkage::Average:
                    sum += d;
                    ++count;
                    break;
                }
            }
        }
        return linkage == Linkage::Average ? sum / count : best;
    };

    for (int step = 0; step < n - 1; ++step) {
        // Find the closest live pair. O(n^3) overall: fine for the
        // workload-population sizes this is used on.
        double best = std::numeric_limits<double>::infinity();
        int bi = -1, bj = -1;
        for (int i = 0; i < n; ++i) {
            if (!alive[i])
                continue;
            for (int j = i + 1; j < n; ++j) {
                if (!alive[j])
                    continue;
                double d = cluster_distance(i, j);
                if (d < best) {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        Merge m;
        m.left = node_id[bi];
        m.right = node_id[bj];
        m.distance = best;
        m.size = static_cast<int>(members[bi].size() +
                                  members[bj].size());
        out.merges.push_back(m);

        // Merge bj into bi.
        members[bi].insert(members[bi].end(), members[bj].begin(),
                           members[bj].end());
        node_id[bi] = n + step;
        alive[bj] = false;
    }
    return out;
}

std::vector<int>
Dendrogram::cut(int k) const
{
    int n = num_leaves;
    if (k < 1 || k > n)
        sim::fatal("Dendrogram::cut: k=%d out of [1,%d]", k, n);
    // Apply the first n-k merges with a union-find, then label the
    // remaining components.
    std::vector<int> parent(n);
    for (int i = 0; i < n; ++i)
        parent[i] = i;
    std::function<int(int)> find = [&](int x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    // merge node id -> a representative leaf.
    std::vector<int> rep(n + merges.size(), -1);
    for (int i = 0; i < n; ++i)
        rep[i] = i;
    for (int s = 0; s < n - k; ++s) {
        const Merge &m = merges[s];
        int a = find(rep[m.left]);
        int b = find(rep[m.right]);
        parent[b] = a;
        rep[n + s] = a;
    }
    // Representatives still matter for uncut merge nodes; fill them
    // so later cuts (not taken) don't break.
    for (std::size_t s = n - k; s < merges.size(); ++s)
        rep[n + s] = find(rep[merges[s].left]);

    std::vector<int> labels(n);
    std::vector<int> roots;
    for (int i = 0; i < n; ++i) {
        int r = find(i);
        auto it = std::find(roots.begin(), roots.end(), r);
        if (it == roots.end()) {
            roots.push_back(r);
            labels[i] = static_cast<int>(roots.size()) - 1;
        } else {
            labels[i] = static_cast<int>(it - roots.begin());
        }
    }
    return labels;
}

double
Dendrogram::height() const
{
    return merges.empty() ? 0.0 : merges.back().distance;
}

namespace {

void
renderNode(const Dendrogram &dendro,
           const std::vector<std::string> &labels, int node, int depth,
           std::ostringstream &os)
{
    std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
    if (node < dendro.num_leaves) {
        os << indent << "- " << labels[node] << "\n";
        return;
    }
    const Merge &m = dendro.merges[node - dendro.num_leaves];
    char buf[64];
    std::snprintf(buf, sizeof(buf), "+ d=%.3f (%d leaves)\n",
                  m.distance, m.size);
    os << indent << buf;
    renderNode(dendro, labels, m.left, depth + 1, os);
    renderNode(dendro, labels, m.right, depth + 1, os);
}

} // namespace

std::string
renderDendrogram(const Dendrogram &dendro,
                 const std::vector<std::string> &labels)
{
    if (static_cast<int>(labels.size()) != dendro.num_leaves)
        sim::fatal("renderDendrogram: %zu labels for %d leaves",
                   labels.size(), dendro.num_leaves);
    std::ostringstream os;
    renderNode(dendro, labels,
               dendro.num_leaves +
                   static_cast<int>(dendro.merges.size()) - 1,
               0, os);
    return os.str();
}

} // namespace mlps::stats
