#include "stats/matrix.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/logger.h"

namespace mlps::stats {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, 0.0)
{
    if (rows < 0 || cols < 0)
        sim::fatal("Matrix: negative dimensions %d x %d", rows, cols);
}

Matrix::Matrix(const std::vector<std::vector<double>> &rows)
{
    rows_ = static_cast<int>(rows.size());
    cols_ = rows.empty() ? 0 : static_cast<int>(rows[0].size());
    data_.reserve(static_cast<std::size_t>(rows_) * cols_);
    for (const auto &r : rows) {
        if (static_cast<int>(r.size()) != cols_)
            sim::fatal("Matrix: ragged rows (%zu vs %d)", r.size(),
                       cols_);
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix
Matrix::identity(int n)
{
    Matrix m(n, n);
    for (int i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

void
Matrix::check(int r, int c) const
{
    if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
        sim::fatal("Matrix: index (%d,%d) out of %d x %d", r, c, rows_,
                   cols_);
}

double &
Matrix::at(int r, int c)
{
    check(r, c);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
}

double
Matrix::at(int r, int c) const
{
    check(r, c);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (int r = 0; r < rows_; ++r)
        for (int c = 0; c < cols_; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

Matrix
Matrix::operator*(const Matrix &rhs) const
{
    if (cols_ != rhs.rows_)
        sim::fatal("Matrix multiply: %d x %d times %d x %d", rows_,
                   cols_, rhs.rows_, rhs.cols_);
    Matrix out(rows_, rhs.cols_);
    for (int r = 0; r < rows_; ++r) {
        for (int k = 0; k < cols_; ++k) {
            double a = at(r, k);
            if (a == 0.0)
                continue;
            for (int c = 0; c < rhs.cols_; ++c)
                out.at(r, c) += a * rhs.at(k, c);
        }
    }
    return out;
}

Matrix
Matrix::operator+(const Matrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        sim::fatal("Matrix add: shape mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += rhs.data_[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        sim::fatal("Matrix subtract: shape mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] -= rhs.data_[i];
    return out;
}

Matrix
Matrix::scaled(double s) const
{
    Matrix out = *this;
    for (double &v : out.data_)
        v *= s;
    return out;
}

std::vector<double>
Matrix::row(int r) const
{
    check(r, 0);
    return {data_.begin() + static_cast<std::size_t>(r) * cols_,
            data_.begin() + static_cast<std::size_t>(r + 1) * cols_};
}

std::vector<double>
Matrix::col(int c) const
{
    check(0, c);
    std::vector<double> out(rows_);
    for (int r = 0; r < rows_; ++r)
        out[r] = at(r, c);
    return out;
}

std::vector<double>
Matrix::columnMeans() const
{
    std::vector<double> means(cols_, 0.0);
    if (rows_ == 0)
        return means;
    for (int r = 0; r < rows_; ++r)
        for (int c = 0; c < cols_; ++c)
            means[c] += at(r, c);
    for (double &m : means)
        m /= rows_;
    return means;
}

std::vector<double>
Matrix::columnStddevs() const
{
    std::vector<double> sd(cols_, 0.0);
    if (rows_ < 2)
        return sd;
    std::vector<double> means = columnMeans();
    for (int r = 0; r < rows_; ++r) {
        for (int c = 0; c < cols_; ++c) {
            double d = at(r, c) - means[c];
            sd[c] += d * d;
        }
    }
    for (double &v : sd)
        v = std::sqrt(v / (rows_ - 1));
    return sd;
}

double
Matrix::maxAbsDiff(const Matrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        sim::fatal("Matrix maxAbsDiff: shape mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::fabs(data_[i] - rhs.data_[i]));
    return m;
}

bool
Matrix::isSymmetric(double tol) const
{
    if (rows_ != cols_)
        return false;
    for (int r = 0; r < rows_; ++r)
        for (int c = r + 1; c < cols_; ++c)
            if (std::fabs(at(r, c) - at(c, r)) > tol)
                return false;
    return true;
}

std::string
Matrix::str() const
{
    std::ostringstream os;
    char buf[32];
    for (int r = 0; r < rows_; ++r) {
        for (int c = 0; c < cols_; ++c) {
            std::snprintf(buf, sizeof(buf), "%10.4g ", at(r, c));
            os << buf;
        }
        os << "\n";
    }
    return os.str();
}

Matrix
covariance(const Matrix &samples)
{
    int n = samples.rows();
    int d = samples.cols();
    if (n < 2)
        sim::fatal("covariance: need at least 2 observations, got %d", n);
    std::vector<double> means = samples.columnMeans();
    Matrix cov(d, d);
    for (int i = 0; i < d; ++i) {
        for (int j = i; j < d; ++j) {
            double acc = 0.0;
            for (int r = 0; r < n; ++r) {
                acc += (samples.at(r, i) - means[i]) *
                       (samples.at(r, j) - means[j]);
            }
            acc /= (n - 1);
            cov.at(i, j) = acc;
            cov.at(j, i) = acc;
        }
    }
    return cov;
}

Matrix
correlationMatrix(const Matrix &samples)
{
    Matrix cov = covariance(samples);
    int d = cov.rows();
    Matrix corr(d, d);
    for (int i = 0; i < d; ++i) {
        for (int j = 0; j < d; ++j) {
            double denom =
                std::sqrt(cov.at(i, i)) * std::sqrt(cov.at(j, j));
            if (i == j)
                corr.at(i, j) = 1.0;
            else
                corr.at(i, j) =
                    denom > 1e-300 ? cov.at(i, j) / denom : 0.0;
        }
    }
    return corr;
}

Matrix
standardize(const Matrix &samples)
{
    std::vector<double> means = samples.columnMeans();
    std::vector<double> sd = samples.columnStddevs();
    Matrix out(samples.rows(), samples.cols());
    for (int r = 0; r < samples.rows(); ++r) {
        for (int c = 0; c < samples.cols(); ++c) {
            double denom = sd[c] > 1e-300 ? sd[c] : 0.0;
            out.at(r, c) = denom > 0.0
                               ? (samples.at(r, c) - means[c]) / denom
                               : 0.0;
        }
    }
    return out;
}

} // namespace mlps::stats
