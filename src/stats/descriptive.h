/**
 * @file
 * Small descriptive-statistics helpers shared by benches and tests.
 */

#ifndef MLPSIM_STATS_DESCRIPTIVE_H
#define MLPSIM_STATS_DESCRIPTIVE_H

#include <vector>

namespace mlps::stats {

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &v);

/** Sample standard deviation (n-1); 0 for fewer than 2 values. */
double stddev(const std::vector<double> &v);

/** Geometric mean; requires strictly positive values. */
double geomean(const std::vector<double> &v);

/** Median (linear interpolation). Requires non-empty input. */
double median(std::vector<double> v);

/** Pearson correlation of two equal-length series. */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/** Min/max over a non-empty vector. */
double minOf(const std::vector<double> &v);
double maxOf(const std::vector<double> &v);

} // namespace mlps::stats

#endif // MLPSIM_STATS_DESCRIPTIVE_H
