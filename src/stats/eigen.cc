#include "stats/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/logger.h"

namespace mlps::stats {

namespace {

/** Sum of squared off-diagonal entries. */
double
offDiagonalNorm(const Matrix &a)
{
    double s = 0.0;
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j)
            if (i != j)
                s += a.at(i, j) * a.at(i, j);
    return s;
}

} // namespace

EigenResult
jacobiEigen(const Matrix &a_in, double tol, int max_sweeps)
{
    if (!a_in.isSymmetric(1e-8))
        sim::fatal("jacobiEigen: matrix is not symmetric");
    int n = a_in.rows();
    Matrix a = a_in;
    Matrix q = Matrix::identity(n);

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (offDiagonalNorm(a) < tol)
            break;
        for (int p = 0; p < n - 1; ++p) {
            for (int r = p + 1; r < n; ++r) {
                double apr = a.at(p, r);
                if (std::fabs(apr) < 1e-300)
                    continue;
                double app = a.at(p, p);
                double arr = a.at(r, r);
                double theta = (arr - app) / (2.0 * apr);
                double t = (theta >= 0.0 ? 1.0 : -1.0) /
                           (std::fabs(theta) +
                            std::sqrt(theta * theta + 1.0));
                double c = 1.0 / std::sqrt(t * t + 1.0);
                double s = t * c;

                // Apply the rotation to A on both sides.
                for (int k = 0; k < n; ++k) {
                    double akp = a.at(k, p);
                    double akr = a.at(k, r);
                    a.at(k, p) = c * akp - s * akr;
                    a.at(k, r) = s * akp + c * akr;
                }
                for (int k = 0; k < n; ++k) {
                    double apk = a.at(p, k);
                    double ark = a.at(r, k);
                    a.at(p, k) = c * apk - s * ark;
                    a.at(r, k) = s * apk + c * ark;
                }
                // Accumulate the eigenvector rotation.
                for (int k = 0; k < n; ++k) {
                    double qkp = q.at(k, p);
                    double qkr = q.at(k, r);
                    q.at(k, p) = c * qkp - s * qkr;
                    q.at(k, r) = s * qkp + c * qkr;
                }
            }
        }
    }

    // Sort eigenpairs by descending eigenvalue.
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::vector<double> diag(n);
    for (int i = 0; i < n; ++i)
        diag[i] = a.at(i, i);
    std::sort(order.begin(), order.end(), [&](int x, int y) {
        return diag[x] > diag[y];
    });

    EigenResult res;
    res.values.resize(n);
    res.vectors = Matrix(n, n);
    for (int i = 0; i < n; ++i) {
        res.values[i] = diag[order[i]];
        for (int k = 0; k < n; ++k)
            res.vectors.at(k, i) = q.at(k, order[i]);
    }
    return res;
}

} // namespace mlps::stats
