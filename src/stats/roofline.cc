#include "stats/roofline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "hw/kernel_timing.h"
#include "sim/logger.h"

namespace mlps::stats {

double
RooflineModel::attainable(double intensity) const
{
    if (intensity <= 0.0)
        return 0.0;
    return std::min(peak_flops, peak_bandwidth * intensity);
}

double
RooflineModel::ridgeIntensity() const
{
    if (peak_bandwidth <= 0.0)
        sim::fatal("RooflineModel: zero bandwidth");
    return peak_flops / peak_bandwidth;
}

RooflineModel
deviceRoofline(const hw::GpuSpec &gpu, hw::Precision p, bool tensor_cores)
{
    RooflineModel m;
    m.peak_flops = gpu.peakFlops(p, tensor_cores);
    m.peak_bandwidth = gpu.hbmBytesPerSec();
    return m;
}

std::vector<RooflinePoint>
empiricalRooflineSweep(const hw::GpuSpec &gpu, hw::Precision p,
                       bool tensor_cores, int points_per_decade)
{
    if (points_per_decade < 1)
        sim::fatal("empiricalRooflineSweep: bad density %d",
                   points_per_decade);
    std::vector<RooflinePoint> out;
    // Intensities from 1/16 to 1024 FLOPs/byte, log-spaced. The
    // micro-kernel streams a fixed 256 MiB working set and performs
    // intensity*bytes flops on it — exactly ERT's strategy.
    const double ws_bytes = 256.0 * 1024.0 * 1024.0;
    const double lo = std::log2(1.0 / 16.0);
    const double hi = std::log2(1024.0);
    int steps = static_cast<int>((hi - lo) * points_per_decade /
                                 std::log2(10.0) * std::log2(10.0));
    steps = std::max(steps, 8);
    for (int i = 0; i <= steps; ++i) {
        double li = lo + (hi - lo) * i / steps;
        double intensity = std::pow(2.0, li);
        hw::KernelProfile k;
        // The traffic scale re-applied inside timeKernel expects fp32
        // baseline bytes; feed it bytes such that the *actual* traffic
        // equals the working set at precision p.
        k.bytes = ws_bytes / hw::trafficScaleVsFp32(p);
        k.flops = intensity * ws_bytes;
        k.tensor_eligible = tensor_cores;
        // ERT micro-kernels are hand-tuned: near-ideal efficiency.
        k.compute_eff = 0.93;
        k.memory_eff = 0.92;
        k.tensor_eff_scale = 0.85;
        double t = hw::timeKernel(gpu, k, p).total();
        RooflinePoint pt;
        char label[64];
        std::snprintf(label, sizeof(label), "ert_%s_%gfpb",
                      hw::toString(p).c_str(), intensity);
        pt.label = label;
        pt.intensity = intensity;
        pt.flops = t > 0.0 ? k.flops / t : 0.0;
        out.push_back(pt);
    }
    return out;
}

} // namespace mlps::stats
