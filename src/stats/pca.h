/**
 * @file
 * Principal component analysis over workload characteristics,
 * reproducing the paper's Figure 1 methodology: standardise the eight
 * metrics, eigendecompose the correlation matrix, project workloads
 * onto the dominant components, and identify each PC's dominant
 * metric (greatest |loading|).
 */

#ifndef MLPSIM_STATS_PCA_H
#define MLPSIM_STATS_PCA_H

#include <string>
#include <vector>

#include "stats/eigen.h"
#include "stats/matrix.h"

namespace mlps::stats {

/** Result of a PCA. */
struct PcaResult {
    /** Eigenvalues of the correlation matrix, descending. */
    std::vector<double> eigenvalues;
    /** Loadings: column i is the i-th principal axis. */
    Matrix components;
    /** Sample projections: row = observation, col = PC score. */
    Matrix scores;
    /** Fraction of variance per PC. */
    std::vector<double> explained_variance;

    /** Cumulative explained variance through PC k (1-based count). */
    double cumulativeVariance(int k) const;

    /** Index of the metric with the largest |loading| on PC i. */
    int dominantMetric(int pc) const;
};

/**
 * Run PCA on row-observations.
 *
 * @param samples one observation per row, one metric per column.
 * @param standardize_inputs z-score columns first (the paper's metrics
 *        have wildly different units, so this defaults on).
 */
PcaResult pca(const Matrix &samples, bool standardize_inputs = true);

} // namespace mlps::stats

#endif // MLPSIM_STATS_PCA_H
