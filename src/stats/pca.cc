#include "stats/pca.h"

#include <cmath>

#include "sim/logger.h"

namespace mlps::stats {

double
PcaResult::cumulativeVariance(int k) const
{
    if (k < 0 || k > static_cast<int>(explained_variance.size()))
        sim::fatal("PcaResult: bad component count %d", k);
    double s = 0.0;
    for (int i = 0; i < k; ++i)
        s += explained_variance[i];
    return s;
}

int
PcaResult::dominantMetric(int pc) const
{
    if (pc < 0 || pc >= components.cols())
        sim::fatal("PcaResult: bad PC index %d", pc);
    int best = 0;
    double best_mag = -1.0;
    for (int m = 0; m < components.rows(); ++m) {
        double mag = std::fabs(components.at(m, pc));
        if (mag > best_mag) {
            best_mag = mag;
            best = m;
        }
    }
    return best;
}

PcaResult
pca(const Matrix &samples, bool standardize_inputs)
{
    if (samples.rows() < 2)
        sim::fatal("pca: need at least 2 observations");
    Matrix data = standardize_inputs ? standardize(samples) : samples;
    Matrix cov = covariance(data);
    EigenResult eig = jacobiEigen(cov);

    PcaResult res;
    res.eigenvalues = eig.values;
    res.components = eig.vectors;
    res.scores = data * eig.vectors;

    double total = 0.0;
    for (double v : eig.values)
        total += std::max(v, 0.0);
    res.explained_variance.resize(eig.values.size());
    for (std::size_t i = 0; i < eig.values.size(); ++i) {
        res.explained_variance[i] =
            total > 0.0 ? std::max(eig.values[i], 0.0) / total : 0.0;
    }
    return res;
}

} // namespace mlps::stats
