/**
 * @file
 * Agglomerative hierarchical clustering over workload feature
 * vectors — the classical companion to PCA in workload
 * characterization studies. Complements Figure 1: where PCA shows
 * the suites as separated clouds, the dendrogram shows which
 * workloads merge first and at what distance.
 */

#ifndef MLPSIM_STATS_CLUSTER_H
#define MLPSIM_STATS_CLUSTER_H

#include <string>
#include <vector>

#include "stats/matrix.h"

namespace mlps::stats {

/** Inter-cluster distance definition. */
enum class Linkage {
    Single,   ///< min pairwise distance
    Complete, ///< max pairwise distance
    Average,  ///< mean pairwise distance (UPGMA)
};

/** One merge step of the dendrogram. */
struct Merge {
    /** Children: indices < n are leaves, >= n refer to merge n-i. */
    int left = -1;
    int right = -1;
    /** Linkage distance at which the merge happened. */
    double distance = 0.0;
    /** Leaves under this node. */
    int size = 0;
};

/** Dendrogram: n-1 merges over n observations. */
struct Dendrogram {
    int num_leaves = 0;
    std::vector<Merge> merges;

    /**
     * Cut the tree into k clusters.
     * @return cluster label per leaf, labels in [0, k).
     */
    std::vector<int> cut(int k) const;

    /** Distance of the final merge (tree height). */
    double height() const;
};

/**
 * Cluster row-observations bottom-up with Euclidean distances.
 *
 * @param samples one observation per row.
 * @param linkage inter-cluster distance rule.
 */
Dendrogram agglomerate(const Matrix &samples,
                       Linkage linkage = Linkage::Average);

/** Euclidean distance matrix of row-observations. */
Matrix pairwiseDistances(const Matrix &samples);

/**
 * Render the dendrogram as indented text with leaf labels.
 */
std::string renderDendrogram(const Dendrogram &dendro,
                             const std::vector<std::string> &labels);

} // namespace mlps::stats

#endif // MLPSIM_STATS_CLUSTER_H
