/**
 * @file
 * Symmetric eigendecomposition via the cyclic Jacobi rotation method —
 * exact enough for PCA over covariance matrices and free of external
 * dependencies.
 */

#ifndef MLPSIM_STATS_EIGEN_H
#define MLPSIM_STATS_EIGEN_H

#include <vector>

#include "stats/matrix.h"

namespace mlps::stats {

/** Result of a symmetric eigendecomposition. */
struct EigenResult {
    /** Eigenvalues, descending. */
    std::vector<double> values;
    /** Eigenvectors as matrix columns, ordered to match values. */
    Matrix vectors;
};

/**
 * Decompose a symmetric matrix A into Q diag(values) Q^T.
 *
 * @param a symmetric matrix.
 * @param tol off-diagonal Frobenius tolerance for convergence.
 * @param max_sweeps safety bound on Jacobi sweeps.
 */
EigenResult jacobiEigen(const Matrix &a, double tol = 1e-12,
                        int max_sweeps = 100);

} // namespace mlps::stats

#endif // MLPSIM_STATS_EIGEN_H
