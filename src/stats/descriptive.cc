#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "sim/logger.h"

namespace mlps::stats {

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
stddev(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    double m = mean(v);
    double acc = 0.0;
    for (double x : v)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v) {
        if (x <= 0.0)
            sim::fatal("geomean: non-positive value %g", x);
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(v.size()));
}

double
median(std::vector<double> v)
{
    if (v.empty())
        sim::fatal("median: empty input");
    std::sort(v.begin(), v.end());
    std::size_t n = v.size();
    if (n % 2 == 1)
        return v[n / 2];
    return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size() || x.size() < 2)
        sim::fatal("pearson: need equal-length series of >= 2");
    double mx = mean(x);
    double my = mean(y);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        double dx = x[i] - mx;
        double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
minOf(const std::vector<double> &v)
{
    if (v.empty())
        sim::fatal("minOf: empty input");
    return *std::min_element(v.begin(), v.end());
}

double
maxOf(const std::vector<double> &v)
{
    if (v.empty())
        sim::fatal("maxOf: empty input");
    return *std::max_element(v.begin(), v.end());
}

} // namespace mlps::stats
