/**
 * @file
 * Roofline model (Williams et al.) plus an Empirical Roofline Toolkit
 * analog: sweep micro-kernels of varying arithmetic intensity against
 * the simulated GPU to trace the empirical double/single/half ceilings
 * of the paper's Figure 2, and place profiled workloads on the plot.
 */

#ifndef MLPSIM_STATS_ROOFLINE_H
#define MLPSIM_STATS_ROOFLINE_H

#include <string>
#include <vector>

#include "hw/gpu.h"
#include "hw/precision.h"

namespace mlps::stats {

/** One point of a roofline ceiling or one workload placement. */
struct RooflinePoint {
    std::string label;
    double intensity = 0.0; ///< FLOPs/byte
    double flops = 0.0;     ///< achieved FLOP/s
};

/** Analytic roofline of a device for one precision. */
struct RooflineModel {
    double peak_flops = 0.0;     ///< compute ceiling, FLOP/s
    double peak_bandwidth = 0.0; ///< memory ceiling, bytes/s

    /** Attainable FLOP/s at an arithmetic intensity. */
    double attainable(double intensity) const;

    /** Ridge point: intensity where the roof turns flat. */
    double ridgeIntensity() const;

    /** True when a point at (intensity) is memory-bound. */
    bool memoryBound(double intensity) const {
        return intensity < ridgeIntensity();
    }
};

/** Analytic roofline of a GPU at the given precision. */
RooflineModel deviceRoofline(const hw::GpuSpec &gpu, hw::Precision p,
                             bool tensor_cores = false);

/**
 * ERT-analog empirical sweep: run modeled micro-kernels (streaming
 * triads with increasing flops-per-byte) and report achieved FLOP/s
 * per intensity. Empirical ceilings sit below the analytic peaks by
 * the kernel-class efficiencies, as in real ERT runs.
 *
 * @param points_per_decade sampling density of the intensity axis.
 */
std::vector<RooflinePoint>
empiricalRooflineSweep(const hw::GpuSpec &gpu, hw::Precision p,
                       bool tensor_cores = false,
                       int points_per_decade = 4);

} // namespace mlps::stats

#endif // MLPSIM_STATS_ROOFLINE_H
