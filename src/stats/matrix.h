/**
 * @file
 * Small dense matrix type for the statistics toolchain (PCA needs
 * covariance matrices and eigen decomposition over at most a few
 * dozen dimensions, so a straightforward row-major double matrix is
 * the right tool).
 */

#ifndef MLPSIM_STATS_MATRIX_H
#define MLPSIM_STATS_MATRIX_H

#include <string>
#include <vector>

namespace mlps::stats {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols zero matrix. */
    Matrix(int rows, int cols);

    /** Build from nested vectors (must be rectangular). */
    explicit Matrix(const std::vector<std::vector<double>> &rows);

    /** n x n identity. */
    static Matrix identity(int n);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    double &at(int r, int c);
    double at(int r, int c) const;

    /** Transpose. */
    Matrix transposed() const;

    /** Matrix product; dimension-checked. */
    Matrix operator*(const Matrix &rhs) const;

    Matrix operator+(const Matrix &rhs) const;
    Matrix operator-(const Matrix &rhs) const;

    /** Scale all entries. */
    Matrix scaled(double s) const;

    /** One row as a vector. */
    std::vector<double> row(int r) const;

    /** One column as a vector. */
    std::vector<double> col(int c) const;

    /** Column means. */
    std::vector<double> columnMeans() const;

    /** Column sample standard deviations (n-1). */
    std::vector<double> columnStddevs() const;

    /** Max |a_ij - b_ij|; matrices must be the same shape. */
    double maxAbsDiff(const Matrix &rhs) const;

    /** True if symmetric within tolerance. */
    bool isSymmetric(double tol = 1e-9) const;

    /** Printable rendering (debugging aid). */
    std::string str() const;

  private:
    void check(int r, int c) const;

    int rows_ = 0;
    int cols_ = 0;
    std::vector<double> data_;
};

/**
 * Sample covariance matrix of row-observations (n-1 denominator).
 * @param samples matrix with one observation per row.
 */
Matrix covariance(const Matrix &samples);

/**
 * Z-score standardisation: subtract column means, divide by column
 * stddevs. Columns with zero variance become all-zero.
 */
Matrix standardize(const Matrix &samples);

/**
 * Pearson correlation matrix of the columns of row-observations.
 * Zero-variance columns correlate 0 with everything (1 with self).
 */
Matrix correlationMatrix(const Matrix &samples);

} // namespace mlps::stats

#endif // MLPSIM_STATS_MATRIX_H
