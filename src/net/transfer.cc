#include "net/transfer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logger.h"

namespace mlps::net {

FlowSimulator::FlowSimulator(const Topology &topo)
    : topo_(topo), edge_bytes_(topo.edgeCount(), 0.0)
{
}

FlowId
FlowSimulator::addFlow(NodeId from, NodeId to, double bytes, double start_s)
{
    if (ran_)
        sim::fatal("FlowSimulator: addFlow after run()");
    if (bytes < 0.0)
        sim::fatal("FlowSimulator: negative flow size %g", bytes);
    if (start_s < 0.0)
        sim::fatal("FlowSimulator: negative start time %g", start_s);
    auto path = topo_.route(from, to);
    if (!path)
        sim::fatal("FlowSimulator: no route %s -> %s",
                   topo_.name(from).c_str(), topo_.name(to).c_str());
    Flow f;
    f.path = *path;
    f.bytes = bytes;
    f.remaining = bytes;
    f.start_s = start_s;
    f.latency_s = topo_.pathLatency(*path);
    flows_.push_back(std::move(f));
    return static_cast<FlowId>(flows_.size()) - 1;
}

std::vector<int>
FlowSimulator::directedEdges(const Path &path) const
{
    // Encode each traversal as edge*2 + direction so that full-duplex
    // links expose independent capacity per direction.
    std::vector<int> out;
    out.reserve(path.edges.size());
    for (std::size_t i = 0; i < path.edges.size(); ++i) {
        int e = path.edges[i];
        auto [a, b] = topo_.endpoints(e);
        int dir = (path.nodes[i] == a && path.nodes[i + 1] == b) ? 0 : 1;
        out.push_back(e * 2 + dir);
    }
    return out;
}

std::vector<double>
FlowSimulator::fairShare(const std::vector<int> &active) const
{
    // Progressive-filling max-min fairness over directed link
    // capacities: repeatedly find the most constrained (link,
    // direction), freeze its flows at the equal share, remove the
    // capacity they consume, repeat. Links are full duplex, so each
    // direction has independent capacity.
    std::vector<double> rate(flows_.size(), 0.0);
    int slots = topo_.edgeCount() * 2;
    std::vector<double> cap(slots);
    for (int e = 0; e < topo_.edgeCount(); ++e) {
        cap[e * 2] = topo_.effectiveLinkBytesPerSec(e);
        cap[e * 2 + 1] = cap[e * 2];
    }

    std::vector<std::vector<int>> fedges(flows_.size());
    for (int fi : active)
        fedges[fi] = directedEdges(flows_[fi].path);

    std::vector<int> unfrozen = active;
    while (!unfrozen.empty()) {
        // Count unfrozen flows per directed link.
        std::vector<int> users(slots, 0);
        for (int fi : unfrozen) {
            for (int de : fedges[fi])
                ++users[de];
        }
        // Most constrained slot = min cap/users over used slots.
        double best_share = std::numeric_limits<double>::infinity();
        int best_slot = -1;
        for (int s = 0; s < slots; ++s) {
            if (users[s] == 0)
                continue;
            double share = cap[s] / users[s];
            if (share < best_share) {
                best_share = share;
                best_slot = s;
            }
        }
        if (best_slot < 0) {
            // Active flows with zero-hop paths (same node): infinite
            // rate — treat as instantaneous via a huge rate.
            for (int fi : unfrozen)
                rate[fi] = 1e18;
            break;
        }
        // Freeze flows crossing the bottleneck at the fair share.
        std::vector<int> still;
        for (int fi : unfrozen) {
            const auto &des = fedges[fi];
            bool crosses = std::find(des.begin(), des.end(),
                                     best_slot) != des.end();
            if (crosses) {
                rate[fi] = best_share;
                for (int de : des)
                    cap[de] -= best_share;
            } else {
                still.push_back(fi);
            }
        }
        // Numerical guard: capacities may underflow slightly.
        for (double &c : cap)
            c = std::max(c, 0.0);
        unfrozen = std::move(still);
    }
    return rate;
}

double
FlowSimulator::run()
{
    if (ran_)
        sim::fatal("FlowSimulator: run() called twice");
    ran_ = true;
    reports_.assign(flows_.size(), FlowReport{});
    for (std::size_t i = 0; i < flows_.size(); ++i) {
        reports_[i].id = static_cast<FlowId>(i);
        reports_[i].bytes = flows_[i].bytes;
        reports_[i].start_s = flows_[i].start_s;
    }
    if (flows_.empty())
        return 0.0;

    double now = 0.0;
    for (;;) {
        // Active = started, not done. Pending = not yet started.
        std::vector<int> active;
        double next_start = std::numeric_limits<double>::infinity();
        bool any_pending = false;
        for (std::size_t i = 0; i < flows_.size(); ++i) {
            Flow &f = flows_[i];
            if (f.done)
                continue;
            double effective_start = f.start_s + f.latency_s;
            if (now + 1e-15 >= effective_start) {
                f.started = true;
                active.push_back(static_cast<int>(i));
            } else {
                any_pending = true;
                next_start = std::min(next_start, effective_start);
            }
        }
        if (active.empty()) {
            if (!any_pending)
                break;
            now = next_start;
            continue;
        }

        // Zero-byte flows complete immediately.
        bool completed_zero = false;
        for (int fi : active) {
            Flow &f = flows_[fi];
            if (f.remaining <= 0.0) {
                f.done = true;
                f.finish_s = now;
                reports_[fi].finish_s = now;
                completed_zero = true;
            }
        }
        if (completed_zero)
            continue;

        std::vector<double> rate = fairShare(active);

        // Time to next completion among active flows.
        double dt = std::numeric_limits<double>::infinity();
        for (int fi : active) {
            if (rate[fi] > 0.0)
                dt = std::min(dt, flows_[fi].remaining / rate[fi]);
        }
        if (any_pending)
            dt = std::min(dt, next_start - now);
        if (!std::isfinite(dt))
            sim::panic("FlowSimulator: stalled with active flows");

        // Advance.
        for (int fi : active) {
            Flow &f = flows_[fi];
            double moved = rate[fi] * dt;
            double used = std::min(moved, f.remaining);
            f.remaining -= used;
            for (int e : f.path.edges)
                edge_bytes_[e] += used;
            if (f.remaining <= 1e-9) {
                f.remaining = 0.0;
                f.done = true;
                f.finish_s = now + dt;
                reports_[fi].finish_s = now + dt;
            }
        }
        now += dt;
    }
    double makespan = 0.0;
    for (const auto &r : reports_)
        makespan = std::max(makespan, r.finish_s);
    return makespan;
}

std::vector<LinkTraffic>
FlowSimulator::linkTraffic() const
{
    std::vector<LinkTraffic> out;
    for (int e = 0; e < topo_.edgeCount(); ++e) {
        if (edge_bytes_[e] > 0.0)
            out.push_back({e, topo_.link(e).kind, edge_bytes_[e]});
    }
    return out;
}

double
FlowSimulator::bytesOnKind(LinkKind kind) const
{
    double total = 0.0;
    for (int e = 0; e < topo_.edgeCount(); ++e) {
        if (topo_.link(e).kind == kind)
            total += edge_bytes_[e];
    }
    return total;
}

double
FlowSimulator::bytesOnTier(FabricTier tier) const
{
    double total = 0.0;
    for (int e = 0; e < topo_.edgeCount(); ++e) {
        if (topo_.link(e).tier == tier)
            total += edge_bytes_[e];
    }
    return total;
}

double
soloTransferSeconds(const Topology &topo, NodeId from, NodeId to,
                    double bytes)
{
    if (from == to)
        return 0.0;
    auto path = topo.route(from, to);
    if (!path)
        return std::numeric_limits<double>::infinity();
    double bw = topo.pathBandwidth(*path);
    double lat = topo.pathLatency(*path);
    if (bw <= 0.0)
        return std::numeric_limits<double>::infinity();
    return lat + bytes / bw;
}

} // namespace mlps::net
