#include "net/topology.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <limits>
#include <numeric>
#include <sstream>

#include "obs/registry.h"
#include "sim/logger.h"

namespace mlps::net {

namespace {

// Route-cache totals are process-wide (topologies are copied freely,
// the metric tracks the harness). Atomics: gauges must be readable
// from any thread, and parallel report workers share topologies.
std::atomic<std::uint64_t> g_route_cache_hits{0};
std::atomic<std::uint64_t> g_route_cache_misses{0};

void
ensureCacheMetrics()
{
    static obs::MetricRegistry::Registration hits =
        obs::MetricRegistry::global().registerGauge(
            "net.topology.route_cache.hits",
            [] {
                return static_cast<double>(
                    g_route_cache_hits.load(std::memory_order_relaxed));
            },
            obs::Volatility::Volatile);
    static obs::MetricRegistry::Registration misses =
        obs::MetricRegistry::global().registerGauge(
            "net.topology.route_cache.misses",
            [] {
                return static_cast<double>(
                    g_route_cache_misses.load(std::memory_order_relaxed));
            },
            obs::Volatility::Volatile);
    (void)hits;
    (void)misses;
}

/** Union-find over node ids (path halving + union by size). */
class NodeUnion
{
  public:
    explicit NodeUnion(int n) : parent_(n), size_(n, 1)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    int find(int x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        if (size_[a] < size_[b])
            std::swap(a, b);
        parent_[b] = a;
        size_[a] += size_[b];
    }

  private:
    std::vector<int> parent_;
    std::vector<int> size_;
};

} // namespace

std::string
toString(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Cpu: return "CPU";
      case NodeKind::Gpu: return "GPU";
      case NodeKind::PcieSwitch: return "PCIeSwitch";
      case NodeKind::Nic: return "NIC";
      case NodeKind::TorSwitch: return "ToRSwitch";
      case NodeKind::SpineSwitch: return "SpineSwitch";
    }
    sim::panic("toString: bad NodeKind %d", static_cast<int>(kind));
}

std::string
toString(CollectiveFabric fabric)
{
    switch (fabric) {
      case CollectiveFabric::NvLink: return "NVLink";
      case CollectiveFabric::PcieP2p: return "PCIe-P2P";
      case CollectiveFabric::HostStaged: return "Host-staged";
    }
    sim::panic("toString: bad CollectiveFabric %d",
               static_cast<int>(fabric));
}

Topology::Topology(const Topology &other)
{
    nodes_ = other.nodes_;
    edges_ = other.edges_;
    epoch_ = other.epoch_;
    structure_version_ = other.structure_version_;
}

Topology &
Topology::operator=(const Topology &other)
{
    if (this == &other)
        return *this;
    nodes_ = other.nodes_;
    edges_ = other.edges_;
    epoch_ = other.epoch_;
    structure_version_ = other.structure_version_;
    std::lock_guard<std::mutex> lock(cache_mu_);
    cache_ = Cache{};
    return *this;
}

Topology::Topology(Topology &&other) noexcept
{
    nodes_ = std::move(other.nodes_);
    edges_ = std::move(other.edges_);
    epoch_ = other.epoch_;
    structure_version_ = other.structure_version_;
}

Topology &
Topology::operator=(Topology &&other) noexcept
{
    if (this == &other)
        return *this;
    nodes_ = std::move(other.nodes_);
    edges_ = std::move(other.edges_);
    epoch_ = other.epoch_;
    structure_version_ = other.structure_version_;
    std::lock_guard<std::mutex> lock(cache_mu_);
    cache_ = Cache{};
    return *this;
}

NodeId
Topology::addNode(NodeKind kind, const std::string &name)
{
    nodes_.push_back(Node{kind, name, {}});
    ++structure_version_;
    return static_cast<NodeId>(nodes_.size()) - 1;
}

NodeId
Topology::addCpu(const std::string &name)
{
    return addNode(NodeKind::Cpu, name);
}

NodeId
Topology::addGpu(const std::string &name)
{
    return addNode(NodeKind::Gpu, name);
}

NodeId
Topology::addSwitch(const std::string &name)
{
    return addNode(NodeKind::PcieSwitch, name);
}

NodeId
Topology::addNic(const std::string &name)
{
    return addNode(NodeKind::Nic, name);
}

NodeId
Topology::addTorSwitch(const std::string &name)
{
    return addNode(NodeKind::TorSwitch, name);
}

NodeId
Topology::addSpineSwitch(const std::string &name)
{
    return addNode(NodeKind::SpineSwitch, name);
}

void
Topology::checkNode(NodeId n) const
{
    if (n < 0 || n >= nodeCount())
        sim::fatal("Topology: node id %d out of range [0,%d)", n,
                   nodeCount());
}

int
Topology::connect(NodeId a, NodeId b, const LinkSpec &link)
{
    checkNode(a);
    checkNode(b);
    if (a == b)
        sim::fatal("Topology::connect: self-loop on node %d", a);
    edges_.push_back(Edge{a, b, link});
    int id = static_cast<int>(edges_.size()) - 1;
    nodes_[a].edges.push_back(id);
    nodes_[b].edges.push_back(id);
    ++structure_version_;
    return id;
}

const std::vector<int> &
Topology::incidentEdges(NodeId n) const
{
    checkNode(n);
    return nodes_[n].edges;
}

NodeKind
Topology::kind(NodeId n) const
{
    checkNode(n);
    return nodes_[n].kind;
}

const std::string &
Topology::name(NodeId n) const
{
    checkNode(n);
    return nodes_[n].name;
}

const LinkSpec &
Topology::link(int edge) const
{
    if (edge < 0 || edge >= edgeCount())
        sim::fatal("Topology: edge id %d out of range", edge);
    return edges_[edge].link;
}

std::pair<NodeId, NodeId>
Topology::endpoints(int edge) const
{
    if (edge < 0 || edge >= edgeCount())
        sim::fatal("Topology: edge id %d out of range", edge);
    return {edges_[edge].a, edges_[edge].b};
}

Topology::Cache &
Topology::freshCacheLocked() const
{
    if (!cache_.primed || cache_.epoch != epoch_ ||
        cache_.structure != structure_version_) {
        cache_.routes.clear();
        cache_.host_cpu.clear();
        for (int k = 0; k < kNumNodeKinds; ++k) {
            cache_.by_kind[k].clear();
            cache_.by_kind_valid[k] = false;
        }
        cache_.epoch = epoch_;
        cache_.structure = structure_version_;
        cache_.primed = true;
    }
    return cache_;
}

std::vector<NodeId>
Topology::nodesOfKind(NodeKind k) const
{
    ensureCacheMetrics();
    int ki = static_cast<int>(k);
    std::lock_guard<std::mutex> lock(cache_mu_);
    Cache &c = freshCacheLocked();
    if (c.by_kind_valid[ki]) {
        g_route_cache_hits.fetch_add(1, std::memory_order_relaxed);
        return c.by_kind[ki];
    }
    g_route_cache_misses.fetch_add(1, std::memory_order_relaxed);
    std::vector<NodeId> out;
    for (NodeId n = 0; n < nodeCount(); ++n) {
        if (nodes_[n].kind == k)
            out.push_back(n);
    }
    c.by_kind[ki] = out;
    c.by_kind_valid[ki] = true;
    return out;
}

std::optional<Path>
Topology::bfs(NodeId from, NodeId to,
              const std::function<bool(int)> *allowed) const
{
    checkNode(from);
    checkNode(to);
    if (from == to)
        return Path{{from}, {}};

    // BFS with NVLink preference: explore NVLink edges before others at
    // each node so equal-hop NVLink routes win ties deterministically.
    std::vector<int> prev_edge(nodes_.size(), -1);
    std::vector<NodeId> prev_node(nodes_.size(), -1);
    std::vector<bool> seen(nodes_.size(), false);
    std::deque<NodeId> frontier;
    frontier.push_back(from);
    seen[from] = true;

    while (!frontier.empty()) {
        NodeId n = frontier.front();
        frontier.pop_front();
        std::vector<int> order = nodes_[n].edges;
        std::stable_sort(order.begin(), order.end(), [&](int e1, int e2) {
            return (edges_[e1].link.kind == LinkKind::NvLink) >
                   (edges_[e2].link.kind == LinkKind::NvLink);
        });
        for (int e : order) {
            if (edges_[e].down)
                continue; // a down link carries no traffic, ever
            if (allowed && !(*allowed)(e))
                continue;
            NodeId other = edges_[e].a == n ? edges_[e].b : edges_[e].a;
            if (seen[other])
                continue;
            seen[other] = true;
            prev_edge[other] = e;
            prev_node[other] = n;
            if (other == to) {
                Path p;
                NodeId cur = to;
                while (cur != from) {
                    p.nodes.push_back(cur);
                    p.edges.push_back(prev_edge[cur]);
                    cur = prev_node[cur];
                }
                p.nodes.push_back(from);
                std::reverse(p.nodes.begin(), p.nodes.end());
                std::reverse(p.edges.begin(), p.edges.end());
                return p;
            }
            frontier.push_back(other);
        }
    }
    return std::nullopt;
}

std::optional<Path>
Topology::route(NodeId from, NodeId to) const
{
    ensureCacheMetrics();
    checkNode(from);
    checkNode(to);
    std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
         << 32) |
        static_cast<std::uint32_t>(to);
    std::lock_guard<std::mutex> lock(cache_mu_);
    Cache &c = freshCacheLocked();
    auto it = c.routes.find(key);
    if (it != c.routes.end()) {
        g_route_cache_hits.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }
    g_route_cache_misses.fetch_add(1, std::memory_order_relaxed);
    auto p = bfs(from, to, nullptr);
    c.routes.emplace(key, p);
    return p;
}

double
Topology::pathBandwidth(const Path &p) const
{
    if (p.edges.empty())
        return 0.0;
    double bw = std::numeric_limits<double>::infinity();
    for (int e : p.edges)
        bw = std::min(bw, effectiveLinkBytesPerSec(e));
    return bw;
}

double
Topology::pathLatency(const Path &p) const
{
    double lat = 0.0;
    for (int e : p.edges)
        lat += link(e).latency_us * 1e-6;
    return lat;
}

bool
Topology::canPeerToPeer(NodeId gpu_a, NodeId gpu_b) const
{
    if (kind(gpu_a) != NodeKind::Gpu || kind(gpu_b) != NodeKind::Gpu)
        sim::fatal("canPeerToPeer: both endpoints must be GPUs");
    if (gpu_a == gpu_b)
        return true;
    // A P2P-legal path avoids CPU root complexes, UPI links, and the
    // datacenter fabric (GPUDirect P2P never crosses a NIC — remote
    // access is RDMA, which this model treats as host-staged).
    std::function<bool(int)> allowed = [&](int e) {
        if (edges_[e].link.kind == LinkKind::Upi)
            return false;
        auto blocked = [&](NodeId n) {
            NodeKind k = nodes_[n].kind;
            return k == NodeKind::Cpu || k == NodeKind::Nic ||
                   k == NodeKind::TorSwitch ||
                   k == NodeKind::SpineSwitch;
        };
        // Edges incident to a CPU are usable only if neither endpoint
        // of the *search* would pass through the CPU; simplest rule:
        // forbid any edge touching a blocked node.
        return !blocked(edges_[e].a) && !blocked(edges_[e].b);
    };
    return bfs(gpu_a, gpu_b, &allowed).has_value();
}

bool
Topology::nvlinkConnected(NodeId gpu_a, NodeId gpu_b) const
{
    if (gpu_a == gpu_b)
        return true;
    std::function<bool(int)> allowed = [&](int e) {
        return edges_[e].link.kind == LinkKind::NvLink;
    };
    return bfs(gpu_a, gpu_b, &allowed).has_value();
}

CollectiveFabric
Topology::collectiveFabric(const std::vector<NodeId> &gpus) const
{
    if (gpus.empty())
        sim::fatal("collectiveFabric: empty GPU set");
    for (NodeId g : gpus)
        checkNode(g);

    // Pod fast path: pairwise BFS is O(n^2) and a 512-GPU pod set
    // makes it prohibitive. Union nodes over the edges either check
    // could ever traverse (NVLink links, or P2P-legal links: non-UPI,
    // not touching a CPU/NIC/switch-fabric node, up). GPUs in
    // different components can satisfy neither check, so a spanning
    // set is host-staged — the only possible answer at pod scale.
    {
        NodeUnion uf(nodeCount());
        for (int e = 0; e < edgeCount(); ++e) {
            const Edge &edge = edges_[e];
            if (edge.down)
                continue;
            bool nvlink = edge.link.kind == LinkKind::NvLink;
            auto blocked = [&](NodeId n) {
                NodeKind k = nodes_[n].kind;
                return k == NodeKind::Cpu || k == NodeKind::Nic ||
                       k == NodeKind::TorSwitch ||
                       k == NodeKind::SpineSwitch;
            };
            bool p2p_legal = edge.link.kind != LinkKind::Upi &&
                             !blocked(edge.a) && !blocked(edge.b);
            if (nvlink || p2p_legal)
                uf.unite(edge.a, edge.b);
        }
        int root = uf.find(gpus[0]);
        for (std::size_t i = 1; i < gpus.size(); ++i) {
            if (uf.find(gpus[i]) != root)
                return CollectiveFabric::HostStaged;
        }
    }

    bool all_nvlink = true;
    bool all_p2p = true;
    for (std::size_t i = 0; i < gpus.size(); ++i) {
        for (std::size_t j = i + 1; j < gpus.size(); ++j) {
            if (!nvlinkConnected(gpus[i], gpus[j]))
                all_nvlink = false;
            if (!canPeerToPeer(gpus[i], gpus[j]))
                all_p2p = false;
        }
    }
    if (all_nvlink)
        return CollectiveFabric::NvLink;
    if (all_p2p)
        return CollectiveFabric::PcieP2p;
    return CollectiveFabric::HostStaged;
}

std::optional<NodeId>
Topology::computeHostCpu(NodeId gpu) const
{
    // One BFS over up links; the nearest CPU at minimum depth with the
    // lowest node id wins — identical to probing every CPU with
    // route() and keeping the first strict improvement, without
    // paying #CPUs searches on a pod-scale graph.
    std::vector<int> depth(nodes_.size(), -1);
    std::deque<NodeId> frontier;
    frontier.push_back(gpu);
    depth[gpu] = 0;
    std::optional<NodeId> best;
    int best_depth = std::numeric_limits<int>::max();
    while (!frontier.empty()) {
        NodeId n = frontier.front();
        frontier.pop_front();
        if (depth[n] > best_depth)
            break; // deeper layers cannot improve
        if (nodes_[n].kind == NodeKind::Cpu &&
            (depth[n] < best_depth || (best && n < *best))) {
            best_depth = depth[n];
            best = n;
        }
        for (int e : nodes_[n].edges) {
            if (edges_[e].down)
                continue;
            NodeId other = edges_[e].a == n ? edges_[e].b : edges_[e].a;
            if (depth[other] >= 0)
                continue;
            depth[other] = depth[n] + 1;
            frontier.push_back(other);
        }
    }
    return best;
}

std::optional<NodeId>
Topology::hostCpu(NodeId gpu) const
{
    ensureCacheMetrics();
    if (kind(gpu) != NodeKind::Gpu)
        sim::fatal("hostCpu: node %d is not a GPU", gpu);
    std::lock_guard<std::mutex> lock(cache_mu_);
    Cache &c = freshCacheLocked();
    auto it = c.host_cpu.find(gpu);
    if (it != c.host_cpu.end()) {
        g_route_cache_hits.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }
    g_route_cache_misses.fetch_add(1, std::memory_order_relaxed);
    auto best = computeHostCpu(gpu);
    c.host_cpu.emplace(gpu, best);
    return best;
}

std::string
Topology::describe() const
{
    std::ostringstream os;
    for (int e = 0; e < edgeCount(); ++e) {
        const Edge &edge = edges_[e];
        os << nodes_[edge.a].name << " <-> " << nodes_[edge.b].name
           << "  [" << toString(edge.link.kind) << " "
           << edge.link.gbps << " GB/s";
        if (edge.down)
            os << ", DOWN";
        else if (edge.bandwidth_scale != 1.0)
            os << ", x" << edge.bandwidth_scale;
        os << "]\n";
    }
    return os.str();
}

void
Topology::checkEdge(int edge) const
{
    if (edge < 0 || edge >= edgeCount())
        sim::fatal("Topology: edge id %d out of range [0,%d)", edge,
                   edgeCount());
}

void
Topology::setLinkDown(int edge, bool down)
{
    checkEdge(edge);
    if (edges_[edge].down == down)
        return;
    edges_[edge].down = down;
    ++epoch_;
}

void
Topology::setLinkBandwidthScale(int edge, double scale)
{
    checkEdge(edge);
    if (!(scale > 0.0))
        sim::fatal("Topology: bandwidth scale %g on edge %d must be "
                   "positive (use setLinkDown for a dead link)",
                   scale, edge);
    if (edges_[edge].bandwidth_scale == scale)
        return;
    edges_[edge].bandwidth_scale = scale;
    ++epoch_;
}

bool
Topology::linkDown(int edge) const
{
    checkEdge(edge);
    return edges_[edge].down;
}

double
Topology::linkBandwidthScale(int edge) const
{
    checkEdge(edge);
    return edges_[edge].bandwidth_scale;
}

double
Topology::effectiveLinkBytesPerSec(int edge) const
{
    checkEdge(edge);
    const Edge &e = edges_[edge];
    if (e.down)
        return 0.0;
    return e.link.effectiveBytesPerSec() * e.bandwidth_scale;
}

void
Topology::resetLinkState()
{
    for (Edge &e : edges_) {
        if (e.down || e.bandwidth_scale != 1.0) {
            e.down = false;
            e.bandwidth_scale = 1.0;
            ++epoch_;
        }
    }
}

bool
Topology::degraded() const
{
    for (const Edge &e : edges_) {
        if (e.down || e.bandwidth_scale != 1.0)
            return true;
    }
    return false;
}

bool
Topology::anyLinkDown() const
{
    for (const Edge &e : edges_) {
        if (e.down)
            return true;
    }
    return false;
}

void
Topology::validate() const
{
    if (nodes_.empty())
        sim::fatal("Topology: no nodes");
    for (int e = 0; e < edgeCount(); ++e) {
        const Edge &edge = edges_[e];
        if (edge.a < 0 || edge.a >= nodeCount() || edge.b < 0 ||
            edge.b >= nodeCount())
            sim::fatal("Topology: edge %d has dangling endpoint "
                       "(%d <-> %d, %d nodes exist)",
                       e, edge.a, edge.b, nodeCount());
        if (!(edge.link.gbps > 0.0))
            sim::fatal("Topology: edge %d (%s <-> %s) has non-positive "
                       "bandwidth %g GB/s",
                       e, nodes_[edge.a].name.c_str(),
                       nodes_[edge.b].name.c_str(), edge.link.gbps);
        if (!(edge.link.efficiency > 0.0))
            sim::fatal("Topology: edge %d (%s <-> %s) has non-positive "
                       "efficiency %g",
                       e, nodes_[edge.a].name.c_str(),
                       nodes_[edge.b].name.c_str(),
                       edge.link.efficiency);
        if (!(edge.bandwidth_scale > 0.0))
            sim::fatal("Topology: edge %d (%s <-> %s) has non-positive "
                       "bandwidth scale %g",
                       e, nodes_[edge.a].name.c_str(),
                       nodes_[edge.b].name.c_str(), edge.bandwidth_scale);
    }
    // Hierarchy invariants for pod fabrics. These fire before the
    // generic connectivity check so misconfigurations get an
    // actionable message instead of a bare "unreachable" one.
    for (int e = 0; e < edgeCount(); ++e) {
        const Edge &edge = edges_[e];
        NodeKind ka = nodes_[edge.a].kind;
        NodeKind kb = nodes_[edge.b].kind;
        if ((ka == NodeKind::Gpu && kb == NodeKind::SpineSwitch) ||
            (kb == NodeKind::Gpu && ka == NodeKind::SpineSwitch))
            sim::fatal("Topology: GPU '%s' wired directly to spine "
                       "switch '%s'; did you mean to attach it behind "
                       "a NIC and ToR switch?",
                       nodes_[ka == NodeKind::Gpu ? edge.a : edge.b]
                           .name.c_str(),
                       nodes_[ka == NodeKind::Gpu ? edge.b : edge.a]
                           .name.c_str());
    }
    int tor_count = 0;
    for (const Node &n : nodes_) {
        if (n.kind == NodeKind::TorSwitch)
            ++tor_count;
    }
    for (NodeId n = 0; n < nodeCount(); ++n) {
        if (nodes_[n].kind == NodeKind::Nic) {
            bool uplinked = false;
            for (int e : nodes_[n].edges) {
                NodeId other =
                    edges_[e].a == n ? edges_[e].b : edges_[e].a;
                if (nodes_[other].kind == NodeKind::TorSwitch)
                    uplinked = true;
            }
            if (!uplinked)
                sim::fatal("Topology: NIC '%s' has zero uplinks; did "
                           "you mean to connect it to a ToR switch?",
                           nodes_[n].name.c_str());
        }
        if (nodes_[n].kind == NodeKind::TorSwitch && tor_count >= 2) {
            bool spined = false;
            for (int e : nodes_[n].edges) {
                NodeId other =
                    edges_[e].a == n ? edges_[e].b : edges_[e].a;
                if (nodes_[other].kind == NodeKind::SpineSwitch)
                    spined = true;
            }
            if (!spined)
                sim::fatal("Topology: rack of ToR switch '%s' is "
                           "disconnected from the pod (%d racks, no "
                           "spine uplink); did you mean to connect it "
                           "to a spine switch?",
                           nodes_[n].name.c_str(), tor_count);
        }
    }

    // Connectivity over *up* edges: one dead link must not strand a
    // node, or routing (and therefore every transfer) silently fails.
    std::vector<bool> seen(nodes_.size(), false);
    std::deque<NodeId> frontier;
    frontier.push_back(0);
    seen[0] = true;
    int reached = 1;
    while (!frontier.empty()) {
        NodeId n = frontier.front();
        frontier.pop_front();
        for (int e : nodes_[n].edges) {
            if (edges_[e].down)
                continue;
            NodeId other = edges_[e].a == n ? edges_[e].b : edges_[e].a;
            if (seen[other])
                continue;
            seen[other] = true;
            ++reached;
            frontier.push_back(other);
        }
    }
    if (reached != nodeCount()) {
        for (NodeId n = 0; n < nodeCount(); ++n) {
            if (!seen[n])
                sim::fatal("Topology: node '%s' unreachable over up "
                           "links (%d of %d nodes connected)",
                           nodes_[n].name.c_str(), reached, nodeCount());
        }
    }
}

} // namespace mlps::net
