#include "net/topology.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>

#include "sim/logger.h"

namespace mlps::net {

std::string
toString(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Cpu: return "CPU";
      case NodeKind::Gpu: return "GPU";
      case NodeKind::PcieSwitch: return "PCIeSwitch";
    }
    sim::panic("toString: bad NodeKind %d", static_cast<int>(kind));
}

std::string
toString(CollectiveFabric fabric)
{
    switch (fabric) {
      case CollectiveFabric::NvLink: return "NVLink";
      case CollectiveFabric::PcieP2p: return "PCIe-P2P";
      case CollectiveFabric::HostStaged: return "Host-staged";
    }
    sim::panic("toString: bad CollectiveFabric %d",
               static_cast<int>(fabric));
}

NodeId
Topology::addNode(NodeKind kind, const std::string &name)
{
    nodes_.push_back(Node{kind, name, {}});
    return static_cast<NodeId>(nodes_.size()) - 1;
}

NodeId
Topology::addCpu(const std::string &name)
{
    return addNode(NodeKind::Cpu, name);
}

NodeId
Topology::addGpu(const std::string &name)
{
    return addNode(NodeKind::Gpu, name);
}

NodeId
Topology::addSwitch(const std::string &name)
{
    return addNode(NodeKind::PcieSwitch, name);
}

void
Topology::checkNode(NodeId n) const
{
    if (n < 0 || n >= nodeCount())
        sim::fatal("Topology: node id %d out of range [0,%d)", n,
                   nodeCount());
}

int
Topology::connect(NodeId a, NodeId b, const LinkSpec &link)
{
    checkNode(a);
    checkNode(b);
    if (a == b)
        sim::fatal("Topology::connect: self-loop on node %d", a);
    edges_.push_back(Edge{a, b, link});
    int id = static_cast<int>(edges_.size()) - 1;
    nodes_[a].edges.push_back(id);
    nodes_[b].edges.push_back(id);
    return id;
}

NodeKind
Topology::kind(NodeId n) const
{
    checkNode(n);
    return nodes_[n].kind;
}

const std::string &
Topology::name(NodeId n) const
{
    checkNode(n);
    return nodes_[n].name;
}

const LinkSpec &
Topology::link(int edge) const
{
    if (edge < 0 || edge >= edgeCount())
        sim::fatal("Topology: edge id %d out of range", edge);
    return edges_[edge].link;
}

std::pair<NodeId, NodeId>
Topology::endpoints(int edge) const
{
    if (edge < 0 || edge >= edgeCount())
        sim::fatal("Topology: edge id %d out of range", edge);
    return {edges_[edge].a, edges_[edge].b};
}

std::vector<NodeId>
Topology::nodesOfKind(NodeKind k) const
{
    std::vector<NodeId> out;
    for (NodeId n = 0; n < nodeCount(); ++n) {
        if (nodes_[n].kind == k)
            out.push_back(n);
    }
    return out;
}

std::optional<Path>
Topology::bfs(NodeId from, NodeId to,
              const std::function<bool(int)> *allowed) const
{
    checkNode(from);
    checkNode(to);
    if (from == to)
        return Path{{from}, {}};

    // BFS with NVLink preference: explore NVLink edges before others at
    // each node so equal-hop NVLink routes win ties deterministically.
    std::vector<int> prev_edge(nodes_.size(), -1);
    std::vector<NodeId> prev_node(nodes_.size(), -1);
    std::vector<bool> seen(nodes_.size(), false);
    std::deque<NodeId> frontier;
    frontier.push_back(from);
    seen[from] = true;

    while (!frontier.empty()) {
        NodeId n = frontier.front();
        frontier.pop_front();
        std::vector<int> order = nodes_[n].edges;
        std::stable_sort(order.begin(), order.end(), [&](int e1, int e2) {
            return (edges_[e1].link.kind == LinkKind::NvLink) >
                   (edges_[e2].link.kind == LinkKind::NvLink);
        });
        for (int e : order) {
            if (edges_[e].down)
                continue; // a down link carries no traffic, ever
            if (allowed && !(*allowed)(e))
                continue;
            NodeId other = edges_[e].a == n ? edges_[e].b : edges_[e].a;
            if (seen[other])
                continue;
            seen[other] = true;
            prev_edge[other] = e;
            prev_node[other] = n;
            if (other == to) {
                Path p;
                NodeId cur = to;
                while (cur != from) {
                    p.nodes.push_back(cur);
                    p.edges.push_back(prev_edge[cur]);
                    cur = prev_node[cur];
                }
                p.nodes.push_back(from);
                std::reverse(p.nodes.begin(), p.nodes.end());
                std::reverse(p.edges.begin(), p.edges.end());
                return p;
            }
            frontier.push_back(other);
        }
    }
    return std::nullopt;
}

std::optional<Path>
Topology::route(NodeId from, NodeId to) const
{
    return bfs(from, to, nullptr);
}

double
Topology::pathBandwidth(const Path &p) const
{
    if (p.edges.empty())
        return 0.0;
    double bw = std::numeric_limits<double>::infinity();
    for (int e : p.edges)
        bw = std::min(bw, effectiveLinkBytesPerSec(e));
    return bw;
}

double
Topology::pathLatency(const Path &p) const
{
    double lat = 0.0;
    for (int e : p.edges)
        lat += link(e).latency_us * 1e-6;
    return lat;
}

bool
Topology::canPeerToPeer(NodeId gpu_a, NodeId gpu_b) const
{
    if (kind(gpu_a) != NodeKind::Gpu || kind(gpu_b) != NodeKind::Gpu)
        sim::fatal("canPeerToPeer: both endpoints must be GPUs");
    if (gpu_a == gpu_b)
        return true;
    // A P2P-legal path avoids CPU root complexes and UPI links.
    std::function<bool(int)> allowed = [&](int e) {
        if (edges_[e].link.kind == LinkKind::Upi)
            return false;
        NodeId a = edges_[e].a;
        NodeId b = edges_[e].b;
        // Edges incident to a CPU are usable only if neither endpoint
        // of the *search* would pass through the CPU; simplest rule:
        // forbid any edge touching a CPU node.
        return nodes_[a].kind != NodeKind::Cpu &&
               nodes_[b].kind != NodeKind::Cpu;
    };
    return bfs(gpu_a, gpu_b, &allowed).has_value();
}

bool
Topology::nvlinkConnected(NodeId gpu_a, NodeId gpu_b) const
{
    if (gpu_a == gpu_b)
        return true;
    std::function<bool(int)> allowed = [&](int e) {
        return edges_[e].link.kind == LinkKind::NvLink;
    };
    return bfs(gpu_a, gpu_b, &allowed).has_value();
}

CollectiveFabric
Topology::collectiveFabric(const std::vector<NodeId> &gpus) const
{
    if (gpus.empty())
        sim::fatal("collectiveFabric: empty GPU set");
    bool all_nvlink = true;
    bool all_p2p = true;
    for (std::size_t i = 0; i < gpus.size(); ++i) {
        for (std::size_t j = i + 1; j < gpus.size(); ++j) {
            if (!nvlinkConnected(gpus[i], gpus[j]))
                all_nvlink = false;
            if (!canPeerToPeer(gpus[i], gpus[j]))
                all_p2p = false;
        }
    }
    if (all_nvlink)
        return CollectiveFabric::NvLink;
    if (all_p2p)
        return CollectiveFabric::PcieP2p;
    return CollectiveFabric::HostStaged;
}

std::optional<NodeId>
Topology::hostCpu(NodeId gpu) const
{
    if (kind(gpu) != NodeKind::Gpu)
        sim::fatal("hostCpu: node %d is not a GPU", gpu);
    std::optional<NodeId> best;
    int best_hops = std::numeric_limits<int>::max();
    for (NodeId cpu : nodesOfKind(NodeKind::Cpu)) {
        auto p = route(gpu, cpu);
        if (p && p->hops() < best_hops) {
            best_hops = p->hops();
            best = cpu;
        }
    }
    return best;
}

std::string
Topology::describe() const
{
    std::ostringstream os;
    for (int e = 0; e < edgeCount(); ++e) {
        const Edge &edge = edges_[e];
        os << nodes_[edge.a].name << " <-> " << nodes_[edge.b].name
           << "  [" << toString(edge.link.kind) << " "
           << edge.link.gbps << " GB/s";
        if (edge.down)
            os << ", DOWN";
        else if (edge.bandwidth_scale != 1.0)
            os << ", x" << edge.bandwidth_scale;
        os << "]\n";
    }
    return os.str();
}

void
Topology::checkEdge(int edge) const
{
    if (edge < 0 || edge >= edgeCount())
        sim::fatal("Topology: edge id %d out of range [0,%d)", edge,
                   edgeCount());
}

void
Topology::setLinkDown(int edge, bool down)
{
    checkEdge(edge);
    if (edges_[edge].down == down)
        return;
    edges_[edge].down = down;
    ++epoch_;
}

void
Topology::setLinkBandwidthScale(int edge, double scale)
{
    checkEdge(edge);
    if (!(scale > 0.0))
        sim::fatal("Topology: bandwidth scale %g on edge %d must be "
                   "positive (use setLinkDown for a dead link)",
                   scale, edge);
    if (edges_[edge].bandwidth_scale == scale)
        return;
    edges_[edge].bandwidth_scale = scale;
    ++epoch_;
}

bool
Topology::linkDown(int edge) const
{
    checkEdge(edge);
    return edges_[edge].down;
}

double
Topology::linkBandwidthScale(int edge) const
{
    checkEdge(edge);
    return edges_[edge].bandwidth_scale;
}

double
Topology::effectiveLinkBytesPerSec(int edge) const
{
    checkEdge(edge);
    const Edge &e = edges_[edge];
    if (e.down)
        return 0.0;
    return e.link.effectiveBytesPerSec() * e.bandwidth_scale;
}

void
Topology::resetLinkState()
{
    for (Edge &e : edges_) {
        if (e.down || e.bandwidth_scale != 1.0) {
            e.down = false;
            e.bandwidth_scale = 1.0;
            ++epoch_;
        }
    }
}

bool
Topology::degraded() const
{
    for (const Edge &e : edges_) {
        if (e.down || e.bandwidth_scale != 1.0)
            return true;
    }
    return false;
}

bool
Topology::anyLinkDown() const
{
    for (const Edge &e : edges_) {
        if (e.down)
            return true;
    }
    return false;
}

void
Topology::validate() const
{
    if (nodes_.empty())
        sim::fatal("Topology: no nodes");
    for (int e = 0; e < edgeCount(); ++e) {
        const Edge &edge = edges_[e];
        if (edge.a < 0 || edge.a >= nodeCount() || edge.b < 0 ||
            edge.b >= nodeCount())
            sim::fatal("Topology: edge %d has dangling endpoint "
                       "(%d <-> %d, %d nodes exist)",
                       e, edge.a, edge.b, nodeCount());
        if (!(edge.link.gbps > 0.0))
            sim::fatal("Topology: edge %d (%s <-> %s) has non-positive "
                       "bandwidth %g GB/s",
                       e, nodes_[edge.a].name.c_str(),
                       nodes_[edge.b].name.c_str(), edge.link.gbps);
        if (!(edge.link.efficiency > 0.0))
            sim::fatal("Topology: edge %d (%s <-> %s) has non-positive "
                       "efficiency %g",
                       e, nodes_[edge.a].name.c_str(),
                       nodes_[edge.b].name.c_str(),
                       edge.link.efficiency);
        if (!(edge.bandwidth_scale > 0.0))
            sim::fatal("Topology: edge %d (%s <-> %s) has non-positive "
                       "bandwidth scale %g",
                       e, nodes_[edge.a].name.c_str(),
                       nodes_[edge.b].name.c_str(), edge.bandwidth_scale);
    }
    // Connectivity over *up* edges: one dead link must not strand a
    // node, or routing (and therefore every transfer) silently fails.
    std::vector<bool> seen(nodes_.size(), false);
    std::deque<NodeId> frontier;
    frontier.push_back(0);
    seen[0] = true;
    int reached = 1;
    while (!frontier.empty()) {
        NodeId n = frontier.front();
        frontier.pop_front();
        for (int e : nodes_[n].edges) {
            if (edges_[e].down)
                continue;
            NodeId other = edges_[e].a == n ? edges_[e].b : edges_[e].a;
            if (seen[other])
                continue;
            seen[other] = true;
            ++reached;
            frontier.push_back(other);
        }
    }
    if (reached != nodeCount()) {
        for (NodeId n = 0; n < nodeCount(); ++n) {
            if (!seen[n])
                sim::fatal("Topology: node '%s' unreachable over up "
                           "links (%d of %d nodes connected)",
                           nodes_[n].name.c_str(), reached, nodeCount());
        }
    }
}

} // namespace mlps::net
