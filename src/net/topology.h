/**
 * @file
 * Interconnect topology graph.
 *
 * Nodes are CPU sockets, GPUs, and PCIe switches; edges carry LinkSpecs.
 * The graph answers the routing questions the training model needs:
 * what path does a host-to-device copy take, can two GPUs do GPUDirect
 * peer-to-peer (no CPU root complex on the path), and what fabric is
 * available for a collective over a GPU set.
 *
 * Edges additionally carry *dynamic* state — up/down and a bandwidth
 * multiplier — so a topology can degrade (NVLink lane drops, PCIe
 * downtraining, hard link failures) without rebuilding the graph.
 * Routing, P2P legality, and fabric selection all re-answer against
 * the current state: a down link is never routed over, and degraded
 * bandwidth flows into every path/flow computation. Each state
 * mutation bumps an epoch counter so cached per-topology derivations
 * know when to recompute.
 */

#ifndef MLPSIM_NET_TOPOLOGY_H
#define MLPSIM_NET_TOPOLOGY_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/link.h"

namespace mlps::net {

/** Node index within a Topology. */
using NodeId = int;

/** Role of a topology node. */
enum class NodeKind {
    Cpu,
    Gpu,
    PcieSwitch,
    Nic,         ///< host network interface (bridges node to rack tier)
    TorSwitch,   ///< top-of-rack Ethernet switch
    SpineSwitch, ///< pod spine Ethernet switch
};

/** Number of NodeKind values (for per-kind caches). */
inline constexpr int kNumNodeKinds = 6;

/** Human-readable name of a node kind. */
std::string toString(NodeKind kind);

/** Fabric selected for a collective over a set of GPUs. */
enum class CollectiveFabric {
    NvLink,     ///< all ring hops run over NVLink
    PcieP2p,    ///< GPUDirect P2P over a shared PCIe complex
    HostStaged, ///< bounced through CPU DRAM (and possibly UPI)
};

/** Human-readable name of a collective fabric. */
std::string toString(CollectiveFabric fabric);

/** A path through the graph: node sequence plus edge indices. */
struct Path {
    std::vector<NodeId> nodes;
    std::vector<int> edges; ///< edge ids, parallel to hops

    int hops() const { return static_cast<int>(edges.size()); }
};

/**
 * Undirected multigraph of the machine's interconnect.
 */
class Topology
{
  public:
    Topology() = default;

    // The route/kind cache is guarded by a mutex, which deletes the
    // default copy/move operations; copies carry the graph and start
    // with a cold cache.
    Topology(const Topology &other);
    Topology &operator=(const Topology &other);
    Topology(Topology &&other) noexcept;
    Topology &operator=(Topology &&other) noexcept;

    /** Add a CPU socket node. @return its id. */
    NodeId addCpu(const std::string &name);

    /** Add a GPU node. @return its id. */
    NodeId addGpu(const std::string &name);

    /** Add a PCIe switch node. @return its id. */
    NodeId addSwitch(const std::string &name);

    /** Add a host NIC node. @return its id. */
    NodeId addNic(const std::string &name);

    /** Add a top-of-rack switch node. @return its id. */
    NodeId addTorSwitch(const std::string &name);

    /** Add a spine switch node. @return its id. */
    NodeId addSpineSwitch(const std::string &name);

    /** Connect two nodes with a link. @return the edge id. */
    int connect(NodeId a, NodeId b, const LinkSpec &link);

    int nodeCount() const { return static_cast<int>(nodes_.size()); }
    int edgeCount() const { return static_cast<int>(edges_.size()); }

    NodeKind kind(NodeId n) const;
    const std::string &name(NodeId n) const;
    const LinkSpec &link(int edge) const;

    /** Endpoints of an edge. */
    std::pair<NodeId, NodeId> endpoints(int edge) const;

    /** Edge ids incident to a node, in connect order. */
    const std::vector<int> &incidentEdges(NodeId n) const;

    /** All node ids of the given kind, in insertion order. */
    std::vector<NodeId> nodesOfKind(NodeKind kind) const;

    /** All GPU node ids, in insertion order. */
    std::vector<NodeId> gpus() const { return nodesOfKind(NodeKind::Gpu); }

    /**
     * Minimum-hop path between two nodes (BFS; NVLink edges preferred
     * on ties so GPU pairs use the fast fabric when both exist).
     * Memoized per link-state epoch — pod-scale graphs ask for the
     * same routes thousands of times per collective.
     * @return nullopt when disconnected.
     */
    std::optional<Path> route(NodeId from, NodeId to) const;

    /** Bottleneck effective bandwidth along a path, bytes/s. */
    double pathBandwidth(const Path &p) const;

    /** Sum of link latencies along a path, seconds. */
    double pathLatency(const Path &p) const;

    /**
     * True when two GPUs can perform GPUDirect P2P: some path between
     * them traverses neither a CPU node nor a UPI link (i.e. they sit
     * behind one root complex or share NVLink).
     */
    bool canPeerToPeer(NodeId gpu_a, NodeId gpu_b) const;

    /** True when the two GPUs share a direct NVLink edge. */
    bool nvlinkConnected(NodeId gpu_a, NodeId gpu_b) const;

    /**
     * Fabric available for a collective spanning the GPU set: NvLink if
     * the set is connected via NVLink edges only, PcieP2p if every pair
     * can P2P, else HostStaged.
     */
    CollectiveFabric collectiveFabric(const std::vector<NodeId> &gpus) const;

    /** The CPU whose root complex hosts this GPU (min-hop CPU). */
    std::optional<NodeId> hostCpu(NodeId gpu) const;

    /** Render an adjacency summary (for Table III dumps). */
    std::string describe() const;

    // -- Dynamic link state ------------------------------------------------

    /** Take a link down (no route may use it) or bring it back up. */
    void setLinkDown(int edge, bool down);

    /**
     * Scale a link's bandwidth (1.0 = healthy). Models NVLink lane
     * degradation and PCIe downtraining. Must be > 0; a dead link is
     * expressed with setLinkDown, not a zero scale.
     */
    void setLinkBandwidthScale(int edge, double scale);

    bool linkDown(int edge) const;
    double linkBandwidthScale(int edge) const;

    /**
     * Effective bandwidth of an edge under its current state, bytes/s.
     * Zero when the link is down.
     */
    double effectiveLinkBytesPerSec(int edge) const;

    /** Restore every link to healthy (up, scale 1.0). */
    void resetLinkState();

    /** True when any link is down or bandwidth-scaled below 1.0. */
    bool degraded() const;

    /** True when at least one link is down (routing has changed). */
    bool anyLinkDown() const;

    /**
     * Monotone counter bumped on every link-state change. Consumers
     * caching per-topology derivations (ring orders, fabric tiers)
     * compare epochs to detect staleness.
     */
    std::uint64_t epoch() const { return epoch_; }

    /**
     * Check structural and dynamic invariants: every edge endpoint
     * names a real node, every link has positive bandwidth/efficiency,
     * the graph is connected over *up* edges, and the hierarchy is
     * well-formed (no GPU wired directly to a spine, no NIC without an
     * uplink, no ToR stranded from the spine layer in a multi-rack
     * pod). Calls sim::fatal (config error, exit code 3) on violation.
     */
    void validate() const;

  private:
    struct Node {
        NodeKind kind;
        std::string name;
        std::vector<int> edges;
    };

    struct Edge {
        NodeId a;
        NodeId b;
        LinkSpec link;
        bool down = false;
        double bandwidth_scale = 1.0;
    };

    NodeId addNode(NodeKind kind, const std::string &name);
    void checkNode(NodeId n) const;
    void checkEdge(int edge) const;

    /**
     * BFS from 'from' to 'to'. When 'allowed' is non-null, an edge is
     * usable only if allowed(edge_id) is true.
     */
    std::optional<Path> bfs(NodeId from, NodeId to,
                            const std::function<bool(int)> *allowed) const;

    std::optional<NodeId> computeHostCpu(NodeId gpu) const;

    /**
     * Memoized derivations, invalidated whenever the link-state epoch
     * or the structure version moves. Guarded by cache_mu_ so parallel
     * report workers can share one topology; hit/miss totals feed the
     * net.topology.route_cache.* gauges in the obs registry.
     */
    struct Cache {
        std::uint64_t epoch = 0;
        std::uint64_t structure = 0;
        bool primed = false;
        std::unordered_map<std::uint64_t, std::optional<Path>> routes;
        std::vector<NodeId> by_kind[kNumNodeKinds];
        bool by_kind_valid[kNumNodeKinds] = {};
        std::unordered_map<NodeId, std::optional<NodeId>> host_cpu;
    };

    /** Caller holds cache_mu_; drops stale results on epoch/structure
     *  moves. */
    Cache &freshCacheLocked() const;

    std::vector<Node> nodes_;
    std::vector<Edge> edges_;
    std::uint64_t epoch_ = 0;
    /** Bumped by addNode/connect (graph shape, not link state). */
    std::uint64_t structure_version_ = 0;

    mutable std::mutex cache_mu_;
    mutable Cache cache_;
};

} // namespace mlps::net

#endif // MLPSIM_NET_TOPOLOGY_H
