#include "net/allreduce.h"

#include <algorithm>
#include <limits>

#include "net/transfer.h"
#include "sim/logger.h"

namespace mlps::net {

AllReduceResult
ringAllReduce(const Topology &topo, const std::vector<NodeId> &gpus,
              double bytes, const AllReduceParams &params)
{
    AllReduceResult res;
    if (gpus.empty())
        sim::fatal("ringAllReduce: empty GPU set");
    for (NodeId g : gpus) {
        if (topo.kind(g) != NodeKind::Gpu)
            sim::fatal("ringAllReduce: node %d is not a GPU", g);
    }
    int n = static_cast<int>(gpus.size());
    if (n == 1 || bytes <= 0.0) {
        res.fabric = topo.collectiveFabric(gpus);
        return res;
    }

    res.fabric = topo.collectiveFabric(gpus);
    double chunk = bytes / n;
    int steps = 2 * (n - 1);
    int buckets = std::max(params.buckets, 1);

    bool staged = res.fabric == CollectiveFabric::HostStaged;
    double derate = staged ? params.staged_bw_derate : 1.0;
    double per_step_lat_us =
        staged ? params.staged_step_overhead_us : params.step_overhead_us;

    // Every step has identical flow structure (each GPU sends one chunk
    // to its successor), so simulate one step and multiply. Bucketing
    // does not change the bandwidth term (same total bytes) but pays
    // the per-step latency once per bucket.
    FlowSimulator fsim(topo);
    for (int i = 0; i < n; ++i)
        fsim.addFlow(gpus[i], gpus[(i + 1) % n], chunk);
    double step_s = fsim.run() / derate;

    res.seconds = steps * step_s +
                  static_cast<double>(buckets) * steps *
                      per_step_lat_us * 1e-6;
    res.nvlink_bytes = steps * fsim.bytesOnKind(LinkKind::NvLink);
    res.pcie_bytes = steps * fsim.bytesOnKind(LinkKind::Pcie3);
    res.upi_bytes = steps * fsim.bytesOnKind(LinkKind::Upi);
    return res;
}

AllReduceResult
treeAllReduce(const Topology &topo, const std::vector<NodeId> &gpus,
              double bytes, const AllReduceParams &params)
{
    AllReduceResult res;
    if (gpus.empty())
        sim::fatal("treeAllReduce: empty GPU set");
    for (NodeId g : gpus) {
        if (topo.kind(g) != NodeKind::Gpu)
            sim::fatal("treeAllReduce: node %d is not a GPU", g);
    }
    int n = static_cast<int>(gpus.size());
    res.fabric = topo.collectiveFabric(gpus);
    if (n == 1 || bytes <= 0.0)
        return res;

    bool staged = res.fabric == CollectiveFabric::HostStaged;
    double derate = staged ? params.staged_bw_derate : 1.0;
    double per_round_lat_us =
        staged ? params.staged_step_overhead_us : params.step_overhead_us;
    int buckets = std::max(params.buckets, 1);

    // Reduce phase: in round r, nodes at odd multiples of 2^r send
    // their full partial sum to the even partner. Broadcast mirrors
    // it. Simulate each distinct round's flow set; total time doubles
    // for the mirror phase.
    double reduce_s = 0.0;
    int rounds = 0;
    for (int stride = 1; stride < n; stride *= 2, ++rounds) {
        FlowSimulator fsim(topo);
        bool any = false;
        for (int i = 0; i + stride < n; i += 2 * stride) {
            fsim.addFlow(gpus[i + stride], gpus[i], bytes);
            any = true;
        }
        if (any)
            reduce_s += fsim.run() / derate;
        res.nvlink_bytes += 2.0 * fsim.bytesOnKind(LinkKind::NvLink);
        res.pcie_bytes += 2.0 * fsim.bytesOnKind(LinkKind::Pcie3);
        res.upi_bytes += 2.0 * fsim.bytesOnKind(LinkKind::Upi);
    }
    res.seconds = 2.0 * reduce_s +
                  static_cast<double>(buckets) * 2.0 * rounds *
                      per_round_lat_us * 1e-6;
    return res;
}

AllReduceResult
autoAllReduce(const Topology &topo, const std::vector<NodeId> &gpus,
              double bytes, const AllReduceParams &params)
{
    AllReduceResult ring = ringAllReduce(topo, gpus, bytes, params);
    AllReduceResult tree = treeAllReduce(topo, gpus, bytes, params);
    return ring.seconds <= tree.seconds ? ring : tree;
}

double
analyticRingSeconds(const Topology &topo, const std::vector<NodeId> &gpus,
                    double bytes, const AllReduceParams &params)
{
    int n = static_cast<int>(gpus.size());
    if (n <= 1 || bytes <= 0.0)
        return 0.0;

    // Bottleneck neighbour-hop bandwidth around the ring.
    double bw = std::numeric_limits<double>::infinity();
    double lat = 0.0;
    for (int i = 0; i < n; ++i) {
        auto path = topo.route(gpus[i], gpus[(i + 1) % n]);
        if (!path)
            sim::fatal("analyticRingSeconds: ring hop disconnected");
        bw = std::min(bw, topo.pathBandwidth(*path));
        lat = std::max(lat, topo.pathLatency(*path));
    }
    int steps = 2 * (n - 1);
    double chunk = bytes / n;
    return steps * (chunk / bw + lat + params.step_overhead_us * 1e-6);
}

} // namespace mlps::net
