#include "net/allreduce.h"

#include <algorithm>
#include <limits>

#include "net/transfer.h"
#include "sim/logger.h"

namespace mlps::net {

namespace {

/** Lowest-id up edge directly joining a and b, or -1. */
int
directUpEdge(const Topology &topo, NodeId a, NodeId b)
{
    for (int e = 0; e < topo.edgeCount(); ++e) {
        auto [x, y] = topo.endpoints(e);
        if (((x == a && y == b) || (x == b && y == a)) &&
            !topo.linkDown(e))
            return e;
    }
    return -1;
}

/** True when some (possibly down) edge directly joins a and b. */
bool
directEdgeExists(const Topology &topo, NodeId a, NodeId b)
{
    for (int e = 0; e < topo.edgeCount(); ++e) {
        auto [x, y] = topo.endpoints(e);
        if ((x == a && y == b) || (x == b && y == a))
            return true;
    }
    return false;
}

} // namespace

std::vector<NodeId>
survivingRingOrder(const Topology &topo, const std::vector<NodeId> &gpus)
{
    // Healthy fabric: keep the caller's order so the fault-oblivious
    // model's results stay bit-identical. Bandwidth-only degradation
    // (no link down) also keeps the order — routes are unchanged.
    if (gpus.size() <= 2 || !topo.anyLinkDown())
        return gpus;

    // Greedy nearest-neighbour re-chain over the surviving fabric:
    // from each GPU pick the unvisited peer with a direct up link
    // (NVLink preferred), else the fewest-hop route. Deterministic:
    // ties break on position in the caller's order.
    std::vector<NodeId> order;
    std::vector<bool> used(gpus.size(), false);
    order.push_back(gpus[0]);
    used[0] = true;
    while (order.size() < gpus.size()) {
        NodeId cur = order.back();
        int best = -1;
        long best_cost = std::numeric_limits<long>::max();
        for (std::size_t i = 0; i < gpus.size(); ++i) {
            if (used[i])
                continue;
            long cost;
            int de = directUpEdge(topo, cur, gpus[i]);
            if (de >= 0) {
                cost = topo.link(de).kind == LinkKind::NvLink ? 0 : 1;
            } else {
                auto p = topo.route(cur, gpus[i]);
                // Disconnected pair: poison cost, picked only if
                // nothing else remains (flow sim will then report it).
                cost = p ? 10 + p->hops() : 1000000;
            }
            if (cost < best_cost) {
                best_cost = cost;
                best = static_cast<int>(i);
            }
        }
        order.push_back(gpus[best]);
        used[best] = true;
    }
    return order;
}

AllReduceResult
ringAllReduce(const Topology &topo, const std::vector<NodeId> &gpus,
              double bytes, const AllReduceParams &params)
{
    AllReduceResult res;
    if (gpus.empty())
        sim::fatal("ringAllReduce: empty GPU set");
    for (NodeId g : gpus) {
        if (topo.kind(g) != NodeKind::Gpu)
            sim::fatal("ringAllReduce: node %d is not a GPU", g);
    }
    int n = static_cast<int>(gpus.size());
    if (n == 1 || bytes <= 0.0) {
        res.fabric = topo.collectiveFabric(gpus);
        return res;
    }

    res.fabric = topo.collectiveFabric(gpus);
    double chunk = bytes / n;
    int steps = 2 * (n - 1);
    int buckets = std::max(params.buckets, 1);

    bool staged = res.fabric == CollectiveFabric::HostStaged;
    double derate = staged ? params.staged_bw_derate : 1.0;
    double per_step_lat_us =
        staged ? params.staged_step_overhead_us : params.step_overhead_us;

    // With links down, rebuild the ring over the surviving fabric and
    // count hops that lost their direct link (the flow simulator then
    // routes them around the fault).
    std::vector<NodeId> order = survivingRingOrder(topo, gpus);
    if (topo.anyLinkDown()) {
        for (int i = 0; i < n; ++i) {
            NodeId a = order[i];
            NodeId b = order[(i + 1) % n];
            if (directEdgeExists(topo, a, b) &&
                directUpEdge(topo, a, b) < 0)
                ++res.reroutes;
        }
    }

    // Every step has identical flow structure (each GPU sends one chunk
    // to its successor), so simulate one step and multiply. Bucketing
    // does not change the bandwidth term (same total bytes) but pays
    // the per-step latency once per bucket.
    FlowSimulator fsim(topo);
    for (int i = 0; i < n; ++i)
        fsim.addFlow(order[i], order[(i + 1) % n], chunk);
    double step_s = fsim.run() / derate;

    res.seconds = steps * step_s +
                  static_cast<double>(buckets) * steps *
                      per_step_lat_us * 1e-6;
    res.seconds *= std::max(params.slowest_participant_scale, 1.0);
    res.nvlink_bytes = steps * fsim.bytesOnKind(LinkKind::NvLink);
    res.pcie_bytes = steps * fsim.bytesOnKind(LinkKind::Pcie3);
    res.upi_bytes = steps * fsim.bytesOnKind(LinkKind::Upi);
    return res;
}

AllReduceResult
treeAllReduce(const Topology &topo, const std::vector<NodeId> &gpus,
              double bytes, const AllReduceParams &params)
{
    AllReduceResult res;
    if (gpus.empty())
        sim::fatal("treeAllReduce: empty GPU set");
    for (NodeId g : gpus) {
        if (topo.kind(g) != NodeKind::Gpu)
            sim::fatal("treeAllReduce: node %d is not a GPU", g);
    }
    int n = static_cast<int>(gpus.size());
    res.fabric = topo.collectiveFabric(gpus);
    if (n == 1 || bytes <= 0.0)
        return res;

    bool staged = res.fabric == CollectiveFabric::HostStaged;
    double derate = staged ? params.staged_bw_derate : 1.0;
    double per_round_lat_us =
        staged ? params.staged_step_overhead_us : params.step_overhead_us;
    int buckets = std::max(params.buckets, 1);

    // Reduce phase: in round r, nodes at odd multiples of 2^r send
    // their full partial sum to the even partner. Broadcast mirrors
    // it. Simulate each distinct round's flow set; total time doubles
    // for the mirror phase.
    double reduce_s = 0.0;
    int rounds = 0;
    for (int stride = 1; stride < n; stride *= 2, ++rounds) {
        FlowSimulator fsim(topo);
        bool any = false;
        for (int i = 0; i + stride < n; i += 2 * stride) {
            fsim.addFlow(gpus[i + stride], gpus[i], bytes);
            any = true;
        }
        if (any)
            reduce_s += fsim.run() / derate;
        res.nvlink_bytes += 2.0 * fsim.bytesOnKind(LinkKind::NvLink);
        res.pcie_bytes += 2.0 * fsim.bytesOnKind(LinkKind::Pcie3);
        res.upi_bytes += 2.0 * fsim.bytesOnKind(LinkKind::Upi);
    }
    res.seconds = 2.0 * reduce_s +
                  static_cast<double>(buckets) * 2.0 * rounds *
                      per_round_lat_us * 1e-6;
    res.seconds *= std::max(params.slowest_participant_scale, 1.0);
    return res;
}

AllReduceResult
autoAllReduce(const Topology &topo, const std::vector<NodeId> &gpus,
              double bytes, const AllReduceParams &params)
{
    AllReduceResult ring = ringAllReduce(topo, gpus, bytes, params);
    AllReduceResult tree = treeAllReduce(topo, gpus, bytes, params);
    return ring.seconds <= tree.seconds ? ring : tree;
}

double
analyticRingSeconds(const Topology &topo, const std::vector<NodeId> &gpus,
                    double bytes, const AllReduceParams &params)
{
    int n = static_cast<int>(gpus.size());
    if (n <= 1 || bytes <= 0.0)
        return 0.0;

    // Bottleneck neighbour-hop bandwidth around the ring.
    double bw = std::numeric_limits<double>::infinity();
    double lat = 0.0;
    for (int i = 0; i < n; ++i) {
        auto path = topo.route(gpus[i], gpus[(i + 1) % n]);
        if (!path)
            sim::fatal("analyticRingSeconds: ring hop disconnected");
        bw = std::min(bw, topo.pathBandwidth(*path));
        lat = std::max(lat, topo.pathLatency(*path));
    }
    int steps = 2 * (n - 1);
    double chunk = bytes / n;
    return steps * (chunk / bw + lat + params.step_overhead_us * 1e-6);
}

} // namespace mlps::net
