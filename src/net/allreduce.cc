#include "net/allreduce.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "net/transfer.h"
#include "sim/logger.h"

namespace mlps::net {

namespace {

/** Accumulate a simulated phase's per-kind/per-tier bytes, scaled by
 *  the number of identical steps the simulation stands for. */
void
accountBytes(AllReduceResult *res, const FlowSimulator &fsim, double mult)
{
    res->nvlink_bytes += mult * fsim.bytesOnKind(LinkKind::NvLink);
    res->pcie_bytes += mult * fsim.bytesOnKind(LinkKind::Pcie3);
    res->upi_bytes += mult * fsim.bytesOnKind(LinkKind::Upi);
    res->eth_bytes += mult * fsim.bytesOnKind(LinkKind::Eth);
    for (int t = 0; t < kNumFabricTiers; ++t)
        res->tier_bytes[t] +=
            mult * fsim.bytesOnTier(static_cast<FabricTier>(t));
}

/** Union-find over node ids (path halving + union by size). */
class Dsu
{
  public:
    explicit Dsu(int n) : parent_(n), size_(n, 1)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    int find(int x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void unite(int a, int b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        if (size_[a] < size_[b])
            std::swap(a, b);
        parent_[b] = a;
        size_[a] += size_[b];
    }

  private:
    std::vector<int> parent_;
    std::vector<int> size_;
};

/** Worst per-host collective fabric across the shape's node groups:
 *  phases barrier, so the slowest host's fallback paces them all. */
CollectiveFabric
worstIntraFabric(const Topology &topo, const FabricShape &shape)
{
    CollectiveFabric worst = CollectiveFabric::NvLink;
    for (const auto &group : shape.node_groups) {
        CollectiveFabric f = topo.collectiveFabric(group);
        if (static_cast<int>(f) > static_cast<int>(worst))
            worst = f;
    }
    return worst;
}

/** Lowest-id up edge directly joining a and b, or -1. */
int
directUpEdge(const Topology &topo, NodeId a, NodeId b)
{
    for (int e = 0; e < topo.edgeCount(); ++e) {
        auto [x, y] = topo.endpoints(e);
        if (((x == a && y == b) || (x == b && y == a)) &&
            !topo.linkDown(e))
            return e;
    }
    return -1;
}

/** True when some (possibly down) edge directly joins a and b. */
bool
directEdgeExists(const Topology &topo, NodeId a, NodeId b)
{
    for (int e = 0; e < topo.edgeCount(); ++e) {
        auto [x, y] = topo.endpoints(e);
        if ((x == a && y == b) || (x == b && y == a))
            return true;
    }
    return false;
}

} // namespace

std::vector<NodeId>
survivingRingOrder(const Topology &topo, const std::vector<NodeId> &gpus)
{
    // Healthy fabric: keep the caller's order so the fault-oblivious
    // model's results stay bit-identical. Bandwidth-only degradation
    // (no link down) also keeps the order — routes are unchanged.
    if (gpus.size() <= 2 || !topo.anyLinkDown())
        return gpus;

    // Greedy nearest-neighbour re-chain over the surviving fabric:
    // from each GPU pick the unvisited peer with a direct up link
    // (NVLink preferred), else the fewest-hop route. Deterministic:
    // ties break on position in the caller's order.
    std::vector<NodeId> order;
    std::vector<bool> used(gpus.size(), false);
    order.push_back(gpus[0]);
    used[0] = true;
    while (order.size() < gpus.size()) {
        NodeId cur = order.back();
        int best = -1;
        long best_cost = std::numeric_limits<long>::max();
        for (std::size_t i = 0; i < gpus.size(); ++i) {
            if (used[i])
                continue;
            long cost;
            int de = directUpEdge(topo, cur, gpus[i]);
            if (de >= 0) {
                cost = topo.link(de).kind == LinkKind::NvLink ? 0 : 1;
            } else {
                auto p = topo.route(cur, gpus[i]);
                // Disconnected pair: poison cost, picked only if
                // nothing else remains (flow sim will then report it).
                cost = p ? 10 + p->hops() : 1000000;
            }
            if (cost < best_cost) {
                best_cost = cost;
                best = static_cast<int>(i);
            }
        }
        order.push_back(gpus[best]);
        used[best] = true;
    }
    return order;
}

AllReduceResult
ringAllReduce(const Topology &topo, const std::vector<NodeId> &gpus,
              double bytes, const AllReduceParams &params)
{
    AllReduceResult res;
    if (gpus.empty())
        sim::fatal("ringAllReduce: empty GPU set");
    for (NodeId g : gpus) {
        if (topo.kind(g) != NodeKind::Gpu)
            sim::fatal("ringAllReduce: node %d is not a GPU", g);
    }
    int n = static_cast<int>(gpus.size());
    if (n == 1 || bytes <= 0.0) {
        res.fabric = topo.collectiveFabric(gpus);
        return res;
    }

    res.fabric = topo.collectiveFabric(gpus);
    double chunk = bytes / n;
    int steps = 2 * (n - 1);
    int buckets = std::max(params.buckets, 1);

    bool staged = res.fabric == CollectiveFabric::HostStaged;
    double derate = staged ? params.staged_bw_derate : 1.0;
    double per_step_lat_us =
        staged ? params.staged_step_overhead_us : params.step_overhead_us;

    // With links down, rebuild the ring over the surviving fabric and
    // count hops that lost their direct link (the flow simulator then
    // routes them around the fault).
    std::vector<NodeId> order = survivingRingOrder(topo, gpus);
    if (topo.anyLinkDown()) {
        for (int i = 0; i < n; ++i) {
            NodeId a = order[i];
            NodeId b = order[(i + 1) % n];
            if (directEdgeExists(topo, a, b) &&
                directUpEdge(topo, a, b) < 0)
                ++res.reroutes;
        }
    }

    // Every step has identical flow structure (each GPU sends one chunk
    // to its successor), so simulate one step and multiply. Bucketing
    // does not change the bandwidth term (same total bytes) but pays
    // the per-step latency once per bucket.
    FlowSimulator fsim(topo);
    for (int i = 0; i < n; ++i)
        fsim.addFlow(order[i], order[(i + 1) % n], chunk);
    double step_s = fsim.run() / derate;

    res.seconds = steps * step_s +
                  static_cast<double>(buckets) * steps *
                      per_step_lat_us * 1e-6;
    res.seconds *= std::max(params.slowest_participant_scale, 1.0);
    accountBytes(&res, fsim, steps);
    return res;
}

AllReduceResult
treeAllReduce(const Topology &topo, const std::vector<NodeId> &gpus,
              double bytes, const AllReduceParams &params)
{
    AllReduceResult res;
    if (gpus.empty())
        sim::fatal("treeAllReduce: empty GPU set");
    for (NodeId g : gpus) {
        if (topo.kind(g) != NodeKind::Gpu)
            sim::fatal("treeAllReduce: node %d is not a GPU", g);
    }
    int n = static_cast<int>(gpus.size());
    res.fabric = topo.collectiveFabric(gpus);
    if (n == 1 || bytes <= 0.0)
        return res;

    bool staged = res.fabric == CollectiveFabric::HostStaged;
    double derate = staged ? params.staged_bw_derate : 1.0;
    double per_round_lat_us =
        staged ? params.staged_step_overhead_us : params.step_overhead_us;
    int buckets = std::max(params.buckets, 1);

    // Reduce phase: in round r, nodes at odd multiples of 2^r send
    // their full partial sum to the even partner. Broadcast mirrors
    // it. Simulate each distinct round's flow set; total time doubles
    // for the mirror phase.
    double reduce_s = 0.0;
    int rounds = 0;
    for (int stride = 1; stride < n; stride *= 2, ++rounds) {
        FlowSimulator fsim(topo);
        bool any = false;
        for (int i = 0; i + stride < n; i += 2 * stride) {
            fsim.addFlow(gpus[i + stride], gpus[i], bytes);
            any = true;
        }
        if (any)
            reduce_s += fsim.run() / derate;
        accountBytes(&res, fsim, 2.0);
    }
    res.seconds = 2.0 * reduce_s +
                  static_cast<double>(buckets) * 2.0 * rounds *
                      per_round_lat_us * 1e-6;
    res.seconds *= std::max(params.slowest_participant_scale, 1.0);
    return res;
}

AllReduceResult
autoAllReduce(const Topology &topo, const std::vector<NodeId> &gpus,
              double bytes, const AllReduceParams &params)
{
    AllReduceResult ring = ringAllReduce(topo, gpus, bytes, params);
    AllReduceResult tree = treeAllReduce(topo, gpus, bytes, params);
    return ring.seconds <= tree.seconds ? ring : tree;
}

bool
FabricShape::uniform() const
{
    if (node_groups.empty() || rack_groups.empty())
        return false;
    std::size_t group_size = node_groups[0].size();
    for (const auto &g : node_groups) {
        if (g.size() != group_size)
            return false;
    }
    std::size_t rack_size = rack_groups[0].size();
    for (const auto &r : rack_groups) {
        if (r.size() != rack_size)
            return false;
    }
    return true;
}

FabricShape
fabricShape(const Topology &topo, const std::vector<NodeId> &gpus)
{
    FabricShape shape;
    for (NodeId g : gpus) {
        if (topo.kind(g) != NodeKind::Gpu)
            sim::fatal("fabricShape: node %d is not a GPU", g);
    }
    if (gpus.empty())
        return shape;

    // Static structure on purpose: a down NVLink must not re-home a
    // GPU to a different host group, it must degrade that host's
    // intra-node fabric instead.
    Dsu node_uf(topo.nodeCount());
    Dsu rack_uf(topo.nodeCount());
    for (int e = 0; e < topo.edgeCount(); ++e) {
        auto [a, b] = topo.endpoints(e);
        FabricTier tier = topo.link(e).tier;
        if (tier == FabricTier::IntraNode)
            node_uf.unite(a, b);
        if (tier != FabricTier::CrossRack)
            rack_uf.unite(a, b);
    }

    std::unordered_map<int, int> group_of_root;
    for (NodeId g : gpus) {
        int root = node_uf.find(g);
        auto [it, fresh] = group_of_root.emplace(
            root, static_cast<int>(shape.node_groups.size()));
        if (fresh)
            shape.node_groups.emplace_back();
        shape.node_groups[it->second].push_back(g);
    }
    std::unordered_map<int, int> rack_of_root;
    for (std::size_t gi = 0; gi < shape.node_groups.size(); ++gi) {
        int root = rack_uf.find(shape.node_groups[gi][0]);
        auto [it, fresh] = rack_of_root.emplace(
            root, static_cast<int>(shape.rack_groups.size()));
        if (fresh)
            shape.rack_groups.emplace_back();
        shape.rack_groups[it->second].push_back(static_cast<int>(gi));
    }
    return shape;
}

namespace {

/** Fault-aware per-host ring orders, counting intra-node reroutes. */
std::vector<std::vector<NodeId>>
hostRingOrders(const Topology &topo, const FabricShape &shape,
               AllReduceResult *res)
{
    std::vector<std::vector<NodeId>> orders;
    orders.reserve(shape.node_groups.size());
    for (const auto &group : shape.node_groups) {
        std::vector<NodeId> order = survivingRingOrder(topo, group);
        int n = static_cast<int>(order.size());
        if (topo.anyLinkDown() && n > 1) {
            for (int i = 0; i < n; ++i) {
                NodeId a = order[i];
                NodeId b = order[(i + 1) % n];
                if (directEdgeExists(topo, a, b) &&
                    directUpEdge(topo, a, b) < 0)
                    ++res->reroutes;
            }
        }
        orders.push_back(std::move(order));
    }
    return orders;
}

/** Ring-phase wall time: simulated step * step count + per-bucket
 *  step overheads. */
double
phaseSeconds(double step_s, int steps, int buckets, double lat_us)
{
    return steps * step_s +
           static_cast<double>(buckets) * steps * lat_us * 1e-6;
}

} // namespace

AllReduceResult
hierarchicalRingAllReduce(const Topology &topo,
                          const std::vector<NodeId> &gpus, double bytes,
                          const AllReduceParams &params)
{
    if (gpus.empty())
        sim::fatal("hierarchicalRingAllReduce: empty GPU set");
    FabricShape shape = fabricShape(topo, gpus);
    std::size_t hosts = shape.node_groups.size();
    // Degenerate shapes delegate to the flat ring *verbatim*: a
    // single-host pod must stay bit-identical to the box model.
    if (hosts <= 1 || !shape.uniform() || bytes <= 0.0)
        return ringAllReduce(topo, gpus, bytes, params);

    int per_host = static_cast<int>(shape.node_groups[0].size());
    int m = static_cast<int>(hosts);
    int buckets = std::max(params.buckets, 1);

    AllReduceResult res;
    res.fabric = CollectiveFabric::HostStaged; // spans hosts

    std::vector<std::vector<NodeId>> orders =
        hostRingOrders(topo, shape, &res);

    CollectiveFabric intra = worstIntraFabric(topo, shape);
    bool intra_staged = intra == CollectiveFabric::HostStaged;
    double intra_derate = intra_staged ? params.staged_bw_derate : 1.0;
    double intra_lat_us = intra_staged ? params.staged_step_overhead_us
                                       : params.step_overhead_us;

    double chunk = bytes / per_host;
    double seconds = 0.0;

    // Phase 1 + 3: intra-node reduce-scatter and allgather, rings in
    // every host concurrently, (L-1) steps of bytes/L each way.
    if (per_host > 1) {
        FlowSimulator fsim(topo);
        for (const auto &order : orders) {
            for (int i = 0; i < per_host; ++i)
                fsim.addFlow(order[i], order[(i + 1) % per_host],
                             chunk);
        }
        double step_s = fsim.run() / intra_derate;
        int steps = 2 * (per_host - 1);
        seconds += phaseSeconds(step_s, steps, buckets, intra_lat_us);
        accountBytes(&res, fsim, steps);
    }

    // Phase 2: cross-node ring all-reduce of each shard over the NIC
    // fabric — rank i of host h talks to rank i of host h+1, L
    // concurrent rank-rings, 2*(M-1) steps of bytes/(L*M). Always
    // host-staged: the path crosses CPU, NIC and switch fabric.
    {
        FlowSimulator fsim(topo);
        double xchunk = chunk / m;
        for (int i = 0; i < per_host; ++i) {
            for (int h = 0; h < m; ++h)
                fsim.addFlow(orders[h][i], orders[(h + 1) % m][i],
                             xchunk);
        }
        double step_s = fsim.run() / params.staged_bw_derate;
        int steps = 2 * (m - 1);
        seconds += phaseSeconds(step_s, steps, buckets,
                                params.staged_step_overhead_us);
        accountBytes(&res, fsim, steps);
    }

    res.seconds =
        seconds * std::max(params.slowest_participant_scale, 1.0);
    return res;
}

AllReduceResult
hierarchicalTreeAllReduce(const Topology &topo,
                          const std::vector<NodeId> &gpus, double bytes,
                          const AllReduceParams &params)
{
    if (gpus.empty())
        sim::fatal("hierarchicalTreeAllReduce: empty GPU set");
    FabricShape shape = fabricShape(topo, gpus);
    std::size_t hosts = shape.node_groups.size();
    if (hosts <= 1 || !shape.uniform() || bytes <= 0.0)
        return ringAllReduce(topo, gpus, bytes, params);
    std::size_t racks = shape.rack_groups.size();
    if (racks <= 1)
        return hierarchicalRingAllReduce(topo, gpus, bytes, params);

    int per_host = static_cast<int>(shape.node_groups[0].size());
    int per_rack = static_cast<int>(shape.rack_groups[0].size());
    int buckets = std::max(params.buckets, 1);

    AllReduceResult res;
    res.fabric = CollectiveFabric::HostStaged;

    std::vector<std::vector<NodeId>> orders =
        hostRingOrders(topo, shape, &res);

    CollectiveFabric intra = worstIntraFabric(topo, shape);
    bool intra_staged = intra == CollectiveFabric::HostStaged;
    double intra_derate = intra_staged ? params.staged_bw_derate : 1.0;
    double intra_lat_us = intra_staged ? params.staged_step_overhead_us
                                       : params.step_overhead_us;

    double chunk = bytes / per_host;
    double seconds = 0.0;

    // Phase 1 + 5: intra-node reduce-scatter and allgather.
    if (per_host > 1) {
        FlowSimulator fsim(topo);
        for (const auto &order : orders) {
            for (int i = 0; i < per_host; ++i)
                fsim.addFlow(order[i], order[(i + 1) % per_host],
                             chunk);
        }
        double step_s = fsim.run() / intra_derate;
        int steps = 2 * (per_host - 1);
        seconds += phaseSeconds(step_s, steps, buckets, intra_lat_us);
        accountBytes(&res, fsim, steps);
    }

    // Phase 2: intra-rack cross-node ring all-reduce of each shard,
    // every rack concurrently, 2*(Mr-1) steps of bytes/(L*Mr).
    if (per_rack > 1) {
        FlowSimulator fsim(topo);
        double xchunk = chunk / per_rack;
        for (const auto &rack : shape.rack_groups) {
            for (int i = 0; i < per_host; ++i) {
                for (int j = 0; j < per_rack; ++j)
                    fsim.addFlow(orders[rack[j]][i],
                                 orders[rack[(j + 1) % per_rack]][i],
                                 xchunk);
            }
        }
        double step_s = fsim.run() / params.staged_bw_derate;
        int steps = 2 * (per_rack - 1);
        seconds += phaseSeconds(step_s, steps, buckets,
                                params.staged_step_overhead_us);
        accountBytes(&res, fsim, steps);
    }

    // Phase 3: binary-tree reduce + mirrored broadcast of each shard
    // across rack leaders (host 0 of each rack) over the spine —
    // 2*ceil(log2 R) rounds each moving bytes/L.
    {
        double reduce_s = 0.0;
        int rounds = 0;
        for (std::size_t stride = 1; stride < racks;
             stride *= 2, ++rounds) {
            FlowSimulator fsim(topo);
            bool any = false;
            for (std::size_t r = 0; r + stride < racks;
                 r += 2 * stride) {
                int lo = shape.rack_groups[r][0];
                int hi = shape.rack_groups[r + stride][0];
                for (int i = 0; i < per_host; ++i)
                    fsim.addFlow(orders[hi][i], orders[lo][i], chunk);
                any = true;
            }
            if (any)
                reduce_s += fsim.run() / params.staged_bw_derate;
            accountBytes(&res, fsim, 2.0);
        }
        seconds += 2.0 * reduce_s +
                   static_cast<double>(buckets) * 2.0 * rounds *
                       params.staged_step_overhead_us * 1e-6;
    }

    // Phase 4: pipelined re-broadcast of the tree result down each
    // rack's host chain (the whole chain streams concurrently; the
    // Mr-1 hop handoffs surface as per-hop overheads).
    if (per_rack > 1) {
        FlowSimulator fsim(topo);
        for (const auto &rack : shape.rack_groups) {
            for (int i = 0; i < per_host; ++i) {
                for (int j = 0; j + 1 < per_rack; ++j)
                    fsim.addFlow(orders[rack[j]][i],
                                 orders[rack[j + 1]][i], chunk);
            }
        }
        double step_s = fsim.run() / params.staged_bw_derate;
        seconds += step_s + static_cast<double>(buckets) *
                                (per_rack - 1) *
                                params.staged_step_overhead_us * 1e-6;
        accountBytes(&res, fsim, 1.0);
    }

    res.seconds =
        seconds * std::max(params.slowest_participant_scale, 1.0);
    return res;
}

AllReduceResult
autoHierarchicalAllReduce(const Topology &topo,
                          const std::vector<NodeId> &gpus, double bytes,
                          const AllReduceParams &params)
{
    if (gpus.empty())
        sim::fatal("autoHierarchicalAllReduce: empty GPU set");
    FabricShape shape = fabricShape(topo, gpus);
    // Single host (every Table III box): the flat fault-aware ring,
    // bit for bit.
    if (shape.node_groups.size() <= 1 || !shape.uniform())
        return ringAllReduce(topo, gpus, bytes, params);
    if (shape.rack_groups.size() <= 1)
        return hierarchicalRingAllReduce(topo, gpus, bytes, params);
    AllReduceResult ring2d =
        hierarchicalRingAllReduce(topo, gpus, bytes, params);
    AllReduceResult tree =
        hierarchicalTreeAllReduce(topo, gpus, bytes, params);
    return ring2d.seconds <= tree.seconds ? ring2d : tree;
}

double
analyticRingSeconds(const Topology &topo, const std::vector<NodeId> &gpus,
                    double bytes, const AllReduceParams &params)
{
    int n = static_cast<int>(gpus.size());
    if (n <= 1 || bytes <= 0.0)
        return 0.0;

    // Bottleneck neighbour-hop bandwidth around the ring.
    double bw = std::numeric_limits<double>::infinity();
    double lat = 0.0;
    for (int i = 0; i < n; ++i) {
        auto path = topo.route(gpus[i], gpus[(i + 1) % n]);
        if (!path)
            sim::fatal("analyticRingSeconds: ring hop disconnected");
        bw = std::min(bw, topo.pathBandwidth(*path));
        lat = std::max(lat, topo.pathLatency(*path));
    }
    int steps = 2 * (n - 1);
    double chunk = bytes / n;
    return steps * (chunk / bw + lat + params.step_overhead_us * 1e-6);
}

} // namespace mlps::net
