/**
 * @file
 * Hierarchical pod fabric composer.
 *
 * A pod is a rack/spine hierarchy stamped out of single-box leaf
 * topologies: each host keeps its intra-node PCIe/NVLink/UPI graph
 * (built by an unmodified Table III builder), gains a NIC on its first
 * CPU socket, and NICs uplink to a per-rack ToR switch which in turn
 * uplinks to the pod spine layer. Links carry their FabricTier so
 * collectives, fault classes, and accounting can reason per tier.
 */

#ifndef MLPSIM_NET_FABRIC_H
#define MLPSIM_NET_FABRIC_H

#include <functional>
#include <string>
#include <vector>

#include "net/topology.h"

namespace mlps::net {

/** Node ids a leaf builder created inside the pod graph. */
struct LeafNodes {
    std::vector<NodeId> cpus;
    std::vector<NodeId> gpus;
    std::vector<NodeId> switches;
};

/**
 * Stamps one host's intra-node graph into 'topo', prefixing every
 * node name with 'prefix' (e.g. "r0n3."). Returns the created nodes;
 * cpus must be non-empty (the NIC attaches to cpus[0]).
 */
using LeafBuilder =
    std::function<LeafNodes(Topology &topo, const std::string &prefix)>;

/** Shape and link speeds of a pod. */
struct PodShape {
    int racks = 1;
    int nodes_per_rack = 1;
    /** Spine switch count; must be >= 1 when racks > 1. */
    int spines = 1;
    /** CPU->NIC attachment (intra-node tier). */
    LinkSpec nic_link;
    /** NIC->ToR uplink (intra-rack tier). */
    LinkSpec tor_uplink;
    /** ToR->spine uplink (cross-rack tier). */
    LinkSpec spine_uplink;

    PodShape();
};

/** One host of a pod: where it sits and what it contains. */
struct PodHost {
    int rack = 0;
    int node = 0; ///< index within the rack
    std::vector<NodeId> cpus;
    std::vector<NodeId> gpus;
    std::vector<NodeId> switches; ///< intra-node PCIe switches
    NodeId nic = -1;
};

/** A composed pod: the graph plus its structural directory. */
struct PodTopology {
    Topology topo;
    std::vector<PodHost> hosts; ///< rack-major, node-minor order
    std::vector<NodeId> tors;   ///< per rack
    std::vector<NodeId> spines;
    std::vector<NodeId> gpus;   ///< all GPUs, host order
};

/**
 * Compose a pod of racks x nodes_per_rack hosts, each built by
 * 'leaf'. Node names are prefixed "r<rack>n<node>."; switches are
 * "tor<rack>" and "spine<i>". The result validates before returning.
 */
PodTopology buildPodTopology(const PodShape &shape,
                             const LeafBuilder &leaf);

} // namespace mlps::net

#endif // MLPSIM_NET_FABRIC_H
