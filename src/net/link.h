/**
 * @file
 * Link types for the host/GPU interconnect fabric.
 *
 * The paper's Figure 5 and Table V hinge on three fabrics: PCI Express
 * 3.0 (CPU-GPU and, behind a switch, GPU-GPU), NVIDIA NVLink (GPU-GPU),
 * and Intel UPI (CPU-CPU). LinkSpec captures their datasheet bandwidth
 * plus a protocol efficiency derating observed in practice.
 */

#ifndef MLPSIM_NET_LINK_H
#define MLPSIM_NET_LINK_H

#include <string>

namespace mlps::net {

/** Fabric family of a link. */
enum class LinkKind {
    Pcie3,   ///< PCI Express 3.0, width given by lanes
    NvLink,  ///< NVLink bricks between two GPUs
    Upi,     ///< Intel Ultra Path Interconnect between sockets
    Eth,     ///< Ethernet/RoCE datacenter fabric (NIC/ToR/spine)
};

/** Human-readable name of a link kind. */
std::string toString(LinkKind kind);

/**
 * Hierarchy tier a link belongs to. Single-box links (PCIe, NVLink,
 * UPI) are intra-node; pod composition adds NIC->ToR (intra-rack) and
 * ToR->spine (cross-rack) tiers. Hierarchical collectives and fault
 * classes key off this attribute.
 */
enum class FabricTier {
    IntraNode, ///< inside one host (PCIe/NVLink/UPI, and CPU->NIC)
    IntraRack, ///< host NIC to top-of-rack switch
    CrossRack, ///< top-of-rack switch to spine layer
};

/** Number of FabricTier values (for per-tier accounting arrays). */
inline constexpr int kNumFabricTiers = 3;

/** Human-readable name of a fabric tier. */
std::string toString(FabricTier tier);

/** One physical link between two topology nodes. */
struct LinkSpec {
    LinkKind kind = LinkKind::Pcie3;
    /** Theoretical unidirectional bandwidth, GB/s. */
    double gbps = 15.8;
    /** One-way latency, microseconds. */
    double latency_us = 1.3;
    /** Achievable fraction of theoretical bandwidth. */
    double efficiency = 0.8;
    /** Hierarchy tier; single-box builders leave the default. */
    FabricTier tier = FabricTier::IntraNode;

    /** Effective unidirectional bandwidth in bytes/s. */
    double effectiveBytesPerSec() const { return gbps * 1e9 * efficiency; }
};

/** PCIe 3.0 link of the given lane count (15.8 GB/s at x16). */
LinkSpec pcie3(int lanes);

/** NVLink connection of the given brick count (25 GB/s per brick). */
LinkSpec nvlink(int bricks);

/** UPI socket-to-socket link (Skylake-SP: 20.8 GB/s unidirectional). */
LinkSpec upi();

/**
 * Ethernet/RoCE link of the given line rate in Gbit/s (100 GbE =
 * 12.5 GB/s), tagged with its hierarchy tier. Used for NIC->ToR and
 * ToR->spine pod links.
 */
LinkSpec ethernet(double gbit_per_s, FabricTier tier);

} // namespace mlps::net

#endif // MLPSIM_NET_LINK_H
