#include "net/link.h"

#include "sim/logger.h"

namespace mlps::net {

std::string
toString(LinkKind kind)
{
    switch (kind) {
      case LinkKind::Pcie3: return "PCIe3";
      case LinkKind::NvLink: return "NVLink";
      case LinkKind::Upi: return "UPI";
      case LinkKind::Eth: return "Eth";
    }
    sim::panic("toString: bad LinkKind %d", static_cast<int>(kind));
}

std::string
toString(FabricTier tier)
{
    switch (tier) {
      case FabricTier::IntraNode: return "intra-node";
      case FabricTier::IntraRack: return "intra-rack";
      case FabricTier::CrossRack: return "cross-rack";
    }
    sim::panic("toString: bad FabricTier %d", static_cast<int>(tier));
}

LinkSpec
pcie3(int lanes)
{
    if (lanes <= 0)
        sim::fatal("pcie3: lane count must be positive, got %d", lanes);
    LinkSpec l;
    l.kind = LinkKind::Pcie3;
    l.gbps = 0.9846 * lanes; // 984.6 MB/s per PCIe 3.0 lane
    l.latency_us = 1.3;
    l.efficiency = 0.8;
    return l;
}

LinkSpec
nvlink(int bricks)
{
    if (bricks <= 0)
        sim::fatal("nvlink: brick count must be positive, got %d", bricks);
    LinkSpec l;
    l.kind = LinkKind::NvLink;
    l.gbps = 25.0 * bricks;
    l.latency_us = 0.7;
    l.efficiency = 0.9;
    return l;
}

LinkSpec
upi()
{
    LinkSpec l;
    l.kind = LinkKind::Upi;
    l.gbps = 20.8;
    l.latency_us = 0.6;
    l.efficiency = 0.85;
    return l;
}

LinkSpec
ethernet(double gbit_per_s, FabricTier tier)
{
    if (!(gbit_per_s > 0.0))
        sim::fatal("ethernet: line rate must be positive, got %g",
                   gbit_per_s);
    LinkSpec l;
    l.kind = LinkKind::Eth;
    l.gbps = gbit_per_s / 8.0; // line rate in Gbit/s -> GB/s
    l.latency_us = 5.0;
    l.efficiency = 0.85;
    l.tier = tier;
    return l;
}

} // namespace mlps::net
