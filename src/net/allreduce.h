/**
 * @file
 * Gradient all-reduce cost model.
 *
 * Data-parallel training synchronises gradients every iteration with an
 * all-reduce. We model NCCL's ring algorithm: each of the 2*(N-1) steps
 * moves bytes/N per GPU to its ring neighbour. Steps are simulated at
 * flow level over the machine topology, so the fabric choice (NVLink,
 * PCIe P2P, or staged through host DRAM/UPI) and its contention fall
 * out of the graph rather than being hard-coded — this is what drives
 * the paper's Figure 5 and the NVLink columns of Table V.
 */

#ifndef MLPSIM_NET_ALLREDUCE_H
#define MLPSIM_NET_ALLREDUCE_H

#include <vector>

#include "net/topology.h"

namespace mlps::net {

/** Outcome of one modeled all-reduce. */
struct AllReduceResult {
    /** Wall time of the collective, seconds. */
    double seconds = 0.0;
    /** Fabric the collective ran over. */
    CollectiveFabric fabric = CollectiveFabric::HostStaged;
    /** Bytes that crossed NVLink links, summed over links. */
    double nvlink_bytes = 0.0;
    /** Bytes that crossed PCIe links, summed over links. */
    double pcie_bytes = 0.0;
    /** Bytes that crossed UPI links, summed over links. */
    double upi_bytes = 0.0;
    /** Bytes that crossed Ethernet links, summed over links. */
    double eth_bytes = 0.0;
    /**
     * Bytes per fabric tier, indexed by FabricTier. Every link has
     * exactly one kind and one tier, so the tier totals and the kind
     * totals are two partitions of the same traffic.
     */
    double tier_bytes[kNumFabricTiers] = {0.0, 0.0, 0.0};
    /**
     * Ring hops that lost their direct link to a fault and were
     * routed around it (0 on a healthy fabric). Hierarchical
     * collectives count intra-node hops only: cross-node phases ride
     * routed Ethernet paths where BFS re-pathing is the norm, not a
     * fault response.
     */
    int reroutes = 0;
};

/** Tunables of the collective model. */
struct AllReduceParams {
    /**
     * Gradient bucket count: frameworks all-reduce gradients in
     * buckets as the backward pass produces them, so every ring step
     * is paid per bucket. Latency-bound workloads (many layers, small
     * tensors) are dominated by this term.
     */
    int buckets = 1;
    /** Per-bucket-step software overhead on P2P-capable fabrics, us. */
    double step_overhead_us = 12.0;
    /**
     * Per-bucket-step overhead when staging through host memory:
     * bounce-buffer management and CPU involvement per transfer.
     */
    double staged_step_overhead_us = 80.0;
    /**
     * Effective-bandwidth derating of host-staged transfers: without
     * GPUDirect P2P, NCCL falls back to device-to-host-to-device
     * copies that reach only a fraction of the PCIe link rate.
     */
    double staged_bw_derate = 0.55;
    /**
     * Straggler stretch: a ring (or tree) collective completes at the
     * pace of its slowest participant, so a thermally-throttled GPU
     * stretches every step. 1.0 = no straggler; values < 1 are
     * treated as 1.
     */
    double slowest_participant_scale = 1.0;
};

/**
 * Ring order over the surviving fabric. On a healthy topology this
 * returns 'gpus' unchanged (so healthy results are bit-identical to
 * the fault-oblivious model). With links down it greedily re-chains
 * the ring to prefer direct surviving links — NVLink first — so the
 * collective avoids multi-hop detours where the fabric still allows.
 */
std::vector<NodeId> survivingRingOrder(const Topology &topo,
                                       const std::vector<NodeId> &gpus);

/**
 * Ring all-reduce of 'bytes' per GPU across the given GPU set.
 *
 * @param topo  machine topology.
 * @param gpus  participating GPU node ids (ring order = given order).
 * @param bytes gradient payload per GPU, bytes.
 * @param params model tunables.
 */
AllReduceResult ringAllReduce(const Topology &topo,
                              const std::vector<NodeId> &gpus,
                              double bytes,
                              const AllReduceParams &params = {});

/**
 * Binary-tree all-reduce (reduce then broadcast): 2*ceil(log2 N)
 * rounds each moving the full payload. Latency-optimal — fewer
 * rounds than the ring's 2*(N-1) steps — but not bandwidth-optimal,
 * so it wins only for small payloads or heavy bucketing, which is
 * exactly when NCCL selects its tree algorithm.
 */
AllReduceResult treeAllReduce(const Topology &topo,
                              const std::vector<NodeId> &gpus,
                              double bytes,
                              const AllReduceParams &params = {});

/**
 * NCCL-style automatic algorithm choice: evaluates both ring and
 * tree and returns the faster (the result's timing reflects the
 * winner).
 */
AllReduceResult autoAllReduce(const Topology &topo,
                              const std::vector<NodeId> &gpus,
                              double bytes,
                              const AllReduceParams &params = {});

/**
 * GPU grouping derived from the static link tiers: GPUs connected by
 * intra-node links form one node group; node groups connected without
 * crossing a cross-rack link share a rack. Derived from the *static*
 * structure (down links still group), so a fault degrades a tier's
 * collective rather than silently re-homing GPUs to another host.
 */
struct FabricShape {
    /** GPUs per host, hosts in first-appearance order. */
    std::vector<std::vector<NodeId>> node_groups;
    /** Indices into node_groups per rack, racks in appearance order. */
    std::vector<std::vector<int>> rack_groups;

    /** All node groups the same size, all racks the same host count. */
    bool uniform() const;
};

/** Derive the tier grouping of a GPU set. */
FabricShape fabricShape(const Topology &topo,
                        const std::vector<NodeId> &gpus);

/**
 * 2D-ring hierarchical all-reduce: intra-node reduce-scatter (ring,
 * L-1 steps of bytes/L), cross-node ring all-reduce of each shard
 * over the NIC fabric (2*(M-1) steps of bytes/(L*M), L concurrent
 * rank-rings), intra-node allgather (L-1 steps). Each tier picks its
 * own fallback: intra-node phases use the worst per-host fabric
 * (NVLink -> PCIe P2P -> host-staged as links fail), cross-node
 * phases are always host-staged. Delegates to ringAllReduce verbatim
 * when the set occupies a single host (or groups are non-uniform), so
 * a degenerate pod is bit-identical to the flat ring.
 */
AllReduceResult hierarchicalRingAllReduce(
    const Topology &topo, const std::vector<NodeId> &gpus, double bytes,
    const AllReduceParams &params = {});

/**
 * Cross-rack tree hierarchical all-reduce: intra-node reduce-scatter,
 * intra-rack cross-node ring all-reduce, binary-tree reduce+broadcast
 * of each shard across rack leaders, intra-rack re-broadcast,
 * intra-node allgather. Latency-optimal across racks — 2*ceil(log2 R)
 * rounds instead of the 2D ring's 2*(R*Mr-1) — so it wins for small
 * payloads or many racks. Falls back to hierarchicalRingAllReduce on
 * single-rack sets.
 */
AllReduceResult hierarchicalTreeAllReduce(
    const Topology &topo, const std::vector<NodeId> &gpus, double bytes,
    const AllReduceParams &params = {});

/**
 * Shape-aware automatic choice: single-host sets delegate exactly to
 * ringAllReduce, single-rack multi-host sets run the 2D ring, and
 * multi-rack sets take the faster of 2D ring and cross-rack tree.
 */
AllReduceResult autoHierarchicalAllReduce(
    const Topology &topo, const std::vector<NodeId> &gpus, double bytes,
    const AllReduceParams &params = {});

/**
 * Closed-form estimate 2*(N-1)/N * bytes / ring_bw + step latencies,
 * using the bottleneck neighbour-link bandwidth. Used as a sanity
 * cross-check of the flow-level model (they agree on contention-free
 * rings).
 */
double analyticRingSeconds(const Topology &topo,
                           const std::vector<NodeId> &gpus,
                           double bytes,
                           const AllReduceParams &params = {});

} // namespace mlps::net

#endif // MLPSIM_NET_ALLREDUCE_H
