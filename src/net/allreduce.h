/**
 * @file
 * Gradient all-reduce cost model.
 *
 * Data-parallel training synchronises gradients every iteration with an
 * all-reduce. We model NCCL's ring algorithm: each of the 2*(N-1) steps
 * moves bytes/N per GPU to its ring neighbour. Steps are simulated at
 * flow level over the machine topology, so the fabric choice (NVLink,
 * PCIe P2P, or staged through host DRAM/UPI) and its contention fall
 * out of the graph rather than being hard-coded — this is what drives
 * the paper's Figure 5 and the NVLink columns of Table V.
 */

#ifndef MLPSIM_NET_ALLREDUCE_H
#define MLPSIM_NET_ALLREDUCE_H

#include <vector>

#include "net/topology.h"

namespace mlps::net {

/** Outcome of one modeled all-reduce. */
struct AllReduceResult {
    /** Wall time of the collective, seconds. */
    double seconds = 0.0;
    /** Fabric the collective ran over. */
    CollectiveFabric fabric = CollectiveFabric::HostStaged;
    /** Bytes that crossed NVLink links, summed over links. */
    double nvlink_bytes = 0.0;
    /** Bytes that crossed PCIe links, summed over links. */
    double pcie_bytes = 0.0;
    /** Bytes that crossed UPI links, summed over links. */
    double upi_bytes = 0.0;
    /**
     * Ring hops that lost their direct link to a fault and were
     * routed around it (0 on a healthy fabric).
     */
    int reroutes = 0;
};

/** Tunables of the collective model. */
struct AllReduceParams {
    /**
     * Gradient bucket count: frameworks all-reduce gradients in
     * buckets as the backward pass produces them, so every ring step
     * is paid per bucket. Latency-bound workloads (many layers, small
     * tensors) are dominated by this term.
     */
    int buckets = 1;
    /** Per-bucket-step software overhead on P2P-capable fabrics, us. */
    double step_overhead_us = 12.0;
    /**
     * Per-bucket-step overhead when staging through host memory:
     * bounce-buffer management and CPU involvement per transfer.
     */
    double staged_step_overhead_us = 80.0;
    /**
     * Effective-bandwidth derating of host-staged transfers: without
     * GPUDirect P2P, NCCL falls back to device-to-host-to-device
     * copies that reach only a fraction of the PCIe link rate.
     */
    double staged_bw_derate = 0.55;
    /**
     * Straggler stretch: a ring (or tree) collective completes at the
     * pace of its slowest participant, so a thermally-throttled GPU
     * stretches every step. 1.0 = no straggler; values < 1 are
     * treated as 1.
     */
    double slowest_participant_scale = 1.0;
};

/**
 * Ring order over the surviving fabric. On a healthy topology this
 * returns 'gpus' unchanged (so healthy results are bit-identical to
 * the fault-oblivious model). With links down it greedily re-chains
 * the ring to prefer direct surviving links — NVLink first — so the
 * collective avoids multi-hop detours where the fabric still allows.
 */
std::vector<NodeId> survivingRingOrder(const Topology &topo,
                                       const std::vector<NodeId> &gpus);

/**
 * Ring all-reduce of 'bytes' per GPU across the given GPU set.
 *
 * @param topo  machine topology.
 * @param gpus  participating GPU node ids (ring order = given order).
 * @param bytes gradient payload per GPU, bytes.
 * @param params model tunables.
 */
AllReduceResult ringAllReduce(const Topology &topo,
                              const std::vector<NodeId> &gpus,
                              double bytes,
                              const AllReduceParams &params = {});

/**
 * Binary-tree all-reduce (reduce then broadcast): 2*ceil(log2 N)
 * rounds each moving the full payload. Latency-optimal — fewer
 * rounds than the ring's 2*(N-1) steps — but not bandwidth-optimal,
 * so it wins only for small payloads or heavy bucketing, which is
 * exactly when NCCL selects its tree algorithm.
 */
AllReduceResult treeAllReduce(const Topology &topo,
                              const std::vector<NodeId> &gpus,
                              double bytes,
                              const AllReduceParams &params = {});

/**
 * NCCL-style automatic algorithm choice: evaluates both ring and
 * tree and returns the faster (the result's timing reflects the
 * winner).
 */
AllReduceResult autoAllReduce(const Topology &topo,
                              const std::vector<NodeId> &gpus,
                              double bytes,
                              const AllReduceParams &params = {});

/**
 * Closed-form estimate 2*(N-1)/N * bytes / ring_bw + step latencies,
 * using the bottleneck neighbour-link bandwidth. Used as a sanity
 * cross-check of the flow-level model (they agree on contention-free
 * rings).
 */
double analyticRingSeconds(const Topology &topo,
                           const std::vector<NodeId> &gpus,
                           double bytes,
                           const AllReduceParams &params = {});

} // namespace mlps::net

#endif // MLPSIM_NET_ALLREDUCE_H
