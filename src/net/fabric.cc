#include "net/fabric.h"

#include <sstream>

#include "sim/logger.h"

namespace mlps::net {

PodShape::PodShape()
{
    // NICs sit on PCIe behind the host root complex; uplinks are
    // 100 GbE to the ToR and per-spine 100 GbE upward. Routing is
    // single-path (BFS, no ECMP), so each ToR pair effectively rides
    // one spine uplink — cross-rack degradation therefore bites as
    // soon as those links drop below the NIC rate.
    nic_link = pcie3(16);
    tor_uplink = ethernet(100.0, FabricTier::IntraRack);
    spine_uplink = ethernet(100.0, FabricTier::CrossRack);
}

PodTopology
buildPodTopology(const PodShape &shape, const LeafBuilder &leaf)
{
    if (shape.racks <= 0)
        sim::fatal("buildPodTopology: rack count must be positive, "
                   "got %d", shape.racks);
    if (shape.nodes_per_rack <= 0)
        sim::fatal("buildPodTopology: nodes per rack must be "
                   "positive, got %d", shape.nodes_per_rack);
    if (shape.racks > 1 && shape.spines <= 0)
        sim::fatal("buildPodTopology: a %d-rack pod needs at least "
                   "one spine switch, got %d",
                   shape.racks, shape.spines);

    PodTopology pod;

    // Spines first so the switch layer has stable low ids regardless
    // of pod size changes below them. Single-rack pods need no spine.
    int spines = shape.racks > 1 ? shape.spines : 0;
    for (int s = 0; s < spines; ++s) {
        std::ostringstream name;
        name << "spine" << s;
        pod.spines.push_back(pod.topo.addSpineSwitch(name.str()));
    }

    for (int r = 0; r < shape.racks; ++r) {
        std::ostringstream tor_name;
        tor_name << "tor" << r;
        NodeId tor = pod.topo.addTorSwitch(tor_name.str());
        pod.tors.push_back(tor);
        for (NodeId spine : pod.spines)
            pod.topo.connect(tor, spine, shape.spine_uplink);

        for (int n = 0; n < shape.nodes_per_rack; ++n) {
            std::ostringstream prefix;
            prefix << "r" << r << "n" << n << ".";
            LeafNodes nodes = leaf(pod.topo, prefix.str());
            if (nodes.cpus.empty())
                sim::fatal("buildPodTopology: leaf builder for host "
                           "%s produced no CPU to attach a NIC to",
                           prefix.str().c_str());

            PodHost host;
            host.rack = r;
            host.node = n;
            host.cpus = nodes.cpus;
            host.gpus = nodes.gpus;
            host.switches = nodes.switches;
            host.nic = pod.topo.addNic(prefix.str() + "NIC0");
            pod.topo.connect(nodes.cpus[0], host.nic, shape.nic_link);
            pod.topo.connect(host.nic, tor, shape.tor_uplink);

            for (NodeId g : host.gpus)
                pod.gpus.push_back(g);
            pod.hosts.push_back(std::move(host));
        }
    }

    pod.topo.validate();
    return pod;
}

} // namespace mlps::net
