/**
 * @file
 * Flow-level transfer simulation over a Topology.
 *
 * FlowSimulator models a set of concurrent byte streams, each following
 * a routed path, sharing link capacity max-min fairly. It advances an
 * internal clock from flow-completion event to flow-completion event,
 * re-solving the bandwidth allocation at each event — the standard
 * flow-level network simulation used when packet detail is unnecessary.
 *
 * The training model uses it for host-to-device input staging and for
 * the per-step flows of the ring all-reduce, where shared-bottleneck
 * contention (e.g. two staged flows crossing one UPI link) matters.
 */

#ifndef MLPSIM_NET_TRANSFER_H
#define MLPSIM_NET_TRANSFER_H

#include <cstdint>
#include <vector>

#include "net/topology.h"

namespace mlps::net {

/** Identifier of a flow within a FlowSimulator. */
using FlowId = int;

/** Final report for one completed flow. */
struct FlowReport {
    FlowId id = -1;
    double bytes = 0.0;
    double start_s = 0.0;
    double finish_s = 0.0;
    /** Average throughput, bytes/s. */
    double throughput() const {
        double d = finish_s - start_s;
        return d > 0.0 ? bytes / d : 0.0;
    }
};

/** Per-link traffic accounting after a simulation completes. */
struct LinkTraffic {
    int edge = -1;
    LinkKind kind = LinkKind::Pcie3;
    double bytes = 0.0;
};

/**
 * Max-min fair flow-level simulator.
 *
 * Usage: addFlow() any number of times, then run(). The simulator is
 * single-shot; construct a fresh one per episode.
 */
class FlowSimulator
{
  public:
    explicit FlowSimulator(const Topology &topo);

    /**
     * Add a flow of 'bytes' from node 'from' to node 'to', departing at
     * time 'start_s' (seconds). The route is fixed at add time.
     * @return the flow id.
     */
    FlowId addFlow(NodeId from, NodeId to, double bytes,
                   double start_s = 0.0);

    /**
     * Run to completion of all flows.
     * @return the makespan in seconds (time the last flow finishes).
     */
    double run();

    /** Reports for all flows, indexed by FlowId. Valid after run(). */
    const std::vector<FlowReport> &reports() const { return reports_; }

    /** Per-link byte totals. Valid after run(). */
    std::vector<LinkTraffic> linkTraffic() const;

    /** Total bytes that traversed links of the given kind. */
    double bytesOnKind(LinkKind kind) const;

    /** Total bytes that traversed links of the given fabric tier. */
    double bytesOnTier(FabricTier tier) const;

  private:
    struct Flow {
        Path path;
        double bytes;
        double remaining;
        double start_s;
        double finish_s = -1.0;
        double latency_s = 0.0;
        bool started = false;
        bool done = false;
    };

    /** Directed (edge, direction) slots a path traverses. */
    std::vector<int> directedEdges(const Path &path) const;

    /** Recompute max-min fair rates for all active flows. */
    std::vector<double> fairShare(const std::vector<int> &active) const;

    const Topology &topo_;
    std::vector<Flow> flows_;
    std::vector<FlowReport> reports_;
    std::vector<double> edge_bytes_;
    bool ran_ = false;
};

/**
 * Convenience: time to move 'bytes' alone over the route between two
 * nodes (bandwidth-bottleneck plus per-hop latency).
 * @return seconds; +inf when disconnected.
 */
double soloTransferSeconds(const Topology &topo, NodeId from, NodeId to,
                           double bytes);

} // namespace mlps::net

#endif // MLPSIM_NET_TRANSFER_H
