/**
 * @file
 * Per-connection session state: line framing and output buffering.
 *
 * The transport hands a session raw bytes as they arrive; the session
 * re-frames them into newline-terminated request lines, enforcing the
 * protocol's line-length ceiling so one hostile client cannot balloon
 * server memory. Output is buffered per session so a slow reader only
 * delays itself.
 */

#ifndef MLPSIM_SERVE_SESSION_H
#define MLPSIM_SERVE_SESSION_H

#include <cstddef>
#include <string>
#include <vector>

namespace mlps::serve {

/**
 * Incremental newline framer with a bounded partial-line buffer.
 * Bytes go in via feed(); complete lines (without the terminator)
 * come out. A partial line exceeding `max_line` trips the overflow
 * latch: the session is poisoned and should be dropped after one
 * protocol-error response.
 */
class LineBuffer
{
  public:
    explicit LineBuffer(std::size_t max_line) : max_line_(max_line) {}

    /**
     * Absorb `n` bytes; append every completed line to `lines`.
     * @return false once the overflow latch trips (and thereafter).
     */
    bool feed(const char *data, std::size_t n,
              std::vector<std::string> *lines);

    bool overflowed() const { return overflowed_; }

    /** Bytes of the current partial line. */
    std::size_t partialBytes() const { return partial_.size(); }

  private:
    std::size_t max_line_;
    std::string partial_;
    bool overflowed_ = false;
};

/** One connected client, as the transport tracks it. */
struct Session {
    int fd = -1;
    std::string client;     ///< stable id ("c<fd-seq>") used everywhere
    LineBuffer lines;       ///< inbound framer
    std::string outbox;     ///< bytes queued toward the client
    bool closing = false;   ///< drop after the outbox drains

    Session(int fd_, std::string client_, std::size_t max_line)
        : fd(fd_), client(std::move(client_)), lines(max_line) {}
};

} // namespace mlps::serve

#endif // MLPSIM_SERVE_SESSION_H
