#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "chaos/hooks.h"
#include "obs/registry.h"
#include "sim/counters.h"
#include "sim/logger.h"

namespace mlps::serve {

namespace {

/** Engine options with the service's non-negotiable policies. */
exec::ExecOptions
serviceExecOptions(exec::ExecOptions opts)
{
    // A service answers per request: failures and deadline overruns
    // must become structured per-request errors, never a throw that
    // tears down the shared engine mid-batch.
    opts.on_error = exec::ErrorPolicy::Capture;
    opts.deadline_policy = exec::DeadlinePolicy::Capture;
    return opts;
}

double
monotonicSeconds()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    double now = static_cast<double>(ts.tv_sec) +
                 static_cast<double>(ts.tv_nsec) * 1e-9;
    // Chaos clock jitter: admission and drain logic must tolerate a
    // perturbed monotonic reading (TokenBucket already clamps
    // backwards time).
    if (chaos::ClockHooks *h = chaos::clockHooks())
        now = h->onMonotonic(now);
    return now;
}

} // namespace

// ---- ServeCore ------------------------------------------------------

ServeCore::ServeCore(const ServeConfig &cfg, Emit emit)
    : cfg_(cfg), emit_(std::move(emit)),
      engine_(serviceExecOptions(cfg.exec)), admission_(cfg.admission)
{
}

void
ServeCore::clientConnected(const std::string &client)
{
    emit_(client, encodeHello());
}

void
ServeCore::clientDisconnected(const std::string &client)
{
    for (std::uint64_t seq : admission_.cancelClient(client)) {
        pending_.erase(seq);
        ++cancelled_;
    }
}

void
ServeCore::handleLine(const std::string &client,
                      const std::string &line, double now_s)
{
    ParsedRequest req;
    std::string error;
    if (!parseRequest(line, catalog_, &req, &error)) {
        ++invalid_;
        emit_(client, encodeReject(req.id, "invalid", error));
        return;
    }
    switch (req.kind) {
    case ParsedRequest::Kind::Ping:
        emit_(client, encodePong(req.id));
        return;
    case ParsedRequest::Kind::Stats:
        emit_(client, encodeStats(req.id, statsJson()));
        return;
    case ParsedRequest::Kind::Metrics:
        // Live registry snapshot; works during drain, like stats.
        emit_(client,
              encodeMetrics(
                  req.id, req.metrics_format,
                  req.metrics_format == "prometheus"
                      ? obs::MetricRegistry::global().toPrometheus()
                      : obs::MetricRegistry::global().toJson()));
        return;
    case ParsedRequest::Kind::Run:
        break;
    }
    if (draining_) {
        emit_(client, encodeReject(req.id, "draining",
                                   "server is draining; resubmit "
                                   "after restart"));
        return;
    }
    std::uint64_t seq = 0;
    Admission verdict = admission_.offer(client, now_s, &seq);
    switch (verdict.outcome) {
    case Admission::Outcome::Admitted:
        pending_.emplace(
            seq, PendingRun{client, req.id, std::move(req.run),
                            req.deadline_s > 0.0
                                ? req.deadline_s
                                : cfg_.default_deadline_s,
                            std::chrono::steady_clock::now()});
        return;
    case Admission::Outcome::RateLimited:
        emit_(client,
              encodeReject(req.id, "overloaded",
                           "client over its request rate",
                           verdict.retry_after_s));
        return;
    case Admission::Outcome::QueueFull:
        emit_(client,
              encodeReject(req.id, "overloaded",
                           "request queue is full",
                           verdict.retry_after_s));
        return;
    }
}

std::size_t
ServeCore::dispatchBatch()
{
    std::vector<AdmissionQueue::Ticket> tickets =
        admission_.takeBatch(cfg_.max_batch);
    if (tickets.empty())
        return 0;

    // Group by effective deadline — the engine's watchdog is batch-
    // wide, so each distinct deadline evaluates as its own batch
    // (ascending, so bounded requests are not delayed by unbounded
    // ones landing first in round-robin order).
    std::map<double, std::vector<PendingRun>> groups;
    for (const auto &t : tickets) {
        auto it = pending_.find(t.seq);
        if (it == pending_.end())
            continue; // client left; ticket already cancelled
        groups[it->second.deadline_s].push_back(
            std::move(it->second));
        pending_.erase(it);
    }

    std::size_t dispatched = 0;
    for (auto &[deadline, runs] : groups) {
        engine_.setRunDeadline(deadline);
        std::vector<exec::RunRequest> batch;
        batch.reserve(runs.size());
        for (auto &p : runs)
            batch.push_back(p.run);
        engine_.run(std::move(batch),
                    [&](std::size_t i, const exec::RunResult &r) {
                        latency_ms_.record(
                            std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                runs[i].submitted)
                                .count());
                        emit_(runs[i].client,
                              encodeResult(runs[i].id, r));
                    });
        dispatched += runs.size();
        served_ += runs.size();
    }
    return dispatched;
}

std::size_t
ServeCore::cancelPending()
{
    std::size_t cancelled = 0;
    while (admission_.pending() > 0) {
        for (const auto &t :
             admission_.takeBatch(admission_.pending())) {
            auto it = pending_.find(t.seq);
            if (it == pending_.end())
                continue;
            emit_(it->second.client,
                  encodeReject(it->second.id, "draining",
                               "cancelled: drain budget exhausted"));
            pending_.erase(it);
            ++cancelled;
            ++cancelled_;
        }
    }
    return cancelled;
}

std::string
ServeCore::statsJson() const
{
    const exec::EngineStats s = engine_.stats();
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "{\"proto\":%d,\"pending\":%zu,\"admitted\":%llu,"
        "\"rejected_rate\":%llu,\"rejected_full\":%llu,"
        "\"served\":%llu,\"invalid\":%llu,\"cancelled\":%llu,"
        "\"draining\":%s,"
        "\"engine\":{\"requests\":%llu,\"cache_hits\":%llu,"
        "\"unique_runs\":%llu,\"journal_loaded\":%llu,"
        "\"degraded\":%llu,\"evictions\":%llu,"
        "\"compactions\":%llu,\"deadline_flags\":%llu}",
        kProtocolVersion, admission_.pending(),
        static_cast<unsigned long long>(admission_.admitted()),
        static_cast<unsigned long long>(admission_.rejectedRate()),
        static_cast<unsigned long long>(admission_.rejectedFull()),
        static_cast<unsigned long long>(served_),
        static_cast<unsigned long long>(invalid_),
        static_cast<unsigned long long>(cancelled_),
        draining_ ? "true" : "false",
        static_cast<unsigned long long>(s.requests),
        static_cast<unsigned long long>(s.cache_hits),
        static_cast<unsigned long long>(s.unique_runs),
        static_cast<unsigned long long>(s.journal_loaded),
        static_cast<unsigned long long>(s.degraded),
        static_cast<unsigned long long>(s.evictions),
        static_cast<unsigned long long>(s.compactions),
        static_cast<unsigned long long>(s.deadline_flags));
    // Request-latency percentiles (host wall clock, hence volatile;
    // placed after the deterministic counters).
    std::string out(buf);
    out += ",\"latency_ms\":{\"count\":" +
           std::to_string(latency_ms_.count());
    auto pct = [this](double p) {
        return latency_ms_.count() > 0
                   ? sim::jsonDouble(latency_ms_.percentile(p))
                   : std::string("0");
    };
    out += ",\"p50\":" + pct(50.0);
    out += ",\"p95\":" + pct(95.0);
    out += ",\"p99\":" + pct(99.0);
    out += "}}";
    return out;
}

// ---- TcpServer ------------------------------------------------------

namespace {

int g_signal_pipe_wr = -1;

void
onTermSignal(int)
{
    if (g_signal_pipe_wr >= 0) {
        char byte = 1;
        // Best effort; a full pipe means a wakeup is already queued.
        [[maybe_unused]] ssize_t n =
            ::write(g_signal_pipe_wr, &byte, 1);
    }
}

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** The event loop: sessions, poll set, drain state machine. */
class Loop
{
  public:
    explicit Loop(const TcpServerConfig &cfg)
        : cfg_(cfg),
          core_(cfg.core,
                [this](const std::string &client,
                       const std::string &line) {
                    deliver(client, line);
                })
    {
    }

    int run();

    ServeCore &core() { return core_; }

  private:
    void deliver(const std::string &client, const std::string &line);
    void flushSession(Session &s);
    void acceptClients();
    void readSession(Session &s);
    void dropSession(int fd, bool notify_core);
    bool listenSocket(std::string *error);

    const TcpServerConfig &cfg_;
    ServeCore core_;
    /** Sessions closed because the peer vanished mid-write (EPIPE /
     *  ECONNRESET on send, real or injected). */
    sim::Counter epipe_;
    obs::MetricRegistry::Registration epipe_reg_ =
        obs::MetricRegistry::global().registerCounter(
            "serve.sessions.epipe", &epipe_,
            obs::Volatility::Volatile);
    int listen_fd_ = -1;
    int bound_port_ = 0;
    int pipe_rd_ = -1;
    std::map<int, Session> sessions_;        // by fd
    std::map<std::string, int> client_fds_;  // client id -> fd
    std::uint64_t next_client_ = 1;
    bool draining_ = false;
    double drain_deadline_s_ = 0.0;
};

bool
Loop::listenSocket(std::string *error)
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(static_cast<std::uint16_t>(cfg_.port));
    if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) !=
        1) {
        *error = "bad listen address '" + cfg_.host + "'";
        return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        *error = std::string("bind: ") + std::strerror(errno);
        return false;
    }
    if (::listen(listen_fd_, 64) != 0) {
        *error = std::string("listen: ") + std::strerror(errno);
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    bound_port_ = ntohs(addr.sin_port);
    setNonBlocking(listen_fd_);
    return true;
}

void
Loop::deliver(const std::string &client, const std::string &line)
{
    auto it = client_fds_.find(client);
    if (it == client_fds_.end())
        return; // client already gone; drop the response
    auto sit = sessions_.find(it->second);
    if (sit == sessions_.end())
        return;
    sit->second.outbox += line;
    sit->second.outbox += '\n';
    flushSession(sit->second);
}

void
Loop::flushSession(Session &s)
{
    while (!s.outbox.empty()) {
        std::size_t want = s.outbox.size();
        if (chaos::NetHooks *h = chaos::netHooks()) {
            want = std::min(want, h->onSend(s.fd, want));
            if (want == 0) {
                // Injected EPIPE: the peer vanished mid-write.
                epipe_.add(1.0);
                s.closing = true;
                s.outbox.clear();
                return;
            }
        }
        ssize_t n =
            ::send(s.fd, s.outbox.data(), want, MSG_NOSIGNAL);
        if (n > 0) {
            s.outbox.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return; // poll will retry via POLLOUT
        // SIGPIPE is ignored and sends use MSG_NOSIGNAL, so a dead
        // peer surfaces here as EPIPE/ECONNRESET: count it and close
        // this session only — never the process.
        if (n < 0 && (errno == EPIPE || errno == ECONNRESET))
            epipe_.add(1.0);
        s.closing = true; // peer vanished; reads will reap it
        s.outbox.clear();
        return;
    }
}

void
Loop::acceptClients()
{
    for (;;) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            return; // EAGAIN or transient; poll again
        setNonBlocking(fd);
        std::string client = "c";
        client += std::to_string(next_client_++);
        sessions_.emplace(
            fd, Session(fd, client, kMaxLineBytes));
        client_fds_[client] = fd;
        core_.clientConnected(client);
    }
}

void
Loop::readSession(Session &s)
{
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(s.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            // Chaos taps: byte-level fuzzing of inbound traffic, and
            // forced mid-line disconnects after this chunk.
            bool chaos_drop = false;
            if (chaos::NetHooks *h = chaos::netHooks()) {
                h->onRecvBytes(s.fd, buf,
                               static_cast<std::size_t>(n));
                chaos_drop = h->onRecvDisconnect(s.fd);
            }
            std::vector<std::string> lines;
            if (!s.lines.feed(buf, static_cast<std::size_t>(n),
                              &lines)) {
                deliver(s.client,
                        encodeReject("", "invalid",
                                     "request line too long"));
                s.closing = true;
            }
            double now = monotonicSeconds();
            for (const auto &line : lines) {
                if (line.empty())
                    continue;
                core_.handleLine(s.client, line, now);
            }
            if (chaos_drop) {
                s.closing = true;
                s.outbox.clear();
                return;
            }
            if (s.closing)
                return;
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        if (n < 0 && errno == EINTR)
            continue;
        s.closing = true; // EOF or hard error
        s.outbox.clear();
        return;
    }
}

void
Loop::dropSession(int fd, bool notify_core)
{
    auto it = sessions_.find(fd);
    if (it == sessions_.end())
        return;
    if (notify_core)
        core_.clientDisconnected(it->second.client);
    client_fds_.erase(it->second.client);
    ::close(fd);
    sessions_.erase(it);
}

int
Loop::run()
{
    std::string error;
    if (!listenSocket(&error)) {
        sim::warn("serve: %s", error.c_str());
        return 3;
    }

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
        sim::warn("serve: pipe: %s", std::strerror(errno));
        return 3;
    }
    pipe_rd_ = pipe_fds[0];
    setNonBlocking(pipe_rd_);
    setNonBlocking(pipe_fds[1]);
    g_signal_pipe_wr = pipe_fds[1];

    struct sigaction sa{};
    sa.sa_handler = onTermSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    if (!cfg_.port_file.empty()) {
        if (FILE *f = std::fopen(cfg_.port_file.c_str(), "w")) {
            std::fprintf(f, "%d\n", bound_port_);
            std::fclose(f);
        } else {
            sim::warn("serve: cannot write port file %s",
                      cfg_.port_file.c_str());
        }
    }
    sim::inform("serve: listening on %s:%d (jobs=%d)",
                cfg_.host.c_str(), bound_port_,
                core_.engine().jobs());

    for (;;) {
        std::vector<pollfd> fds;
        fds.push_back({pipe_rd_, POLLIN, 0});
        if (!draining_ && listen_fd_ >= 0)
            fds.push_back({listen_fd_, POLLIN, 0});
        for (auto &[fd, s] : sessions_) {
            short events = 0;
            if (!s.closing)
                events |= POLLIN;
            if (!s.outbox.empty())
                events |= POLLOUT;
            if (events != 0)
                fds.push_back({fd, events, 0});
        }

        int timeout_ms = -1;
        if (core_.hasPending())
            timeout_ms = 0; // dispatch below, then re-poll
        else if (draining_)
            timeout_ms = 50; // re-check the drain deadline

        int rc = ::poll(fds.data(),
                        static_cast<nfds_t>(fds.size()), timeout_ms);
        if (rc < 0 && errno != EINTR) {
            sim::warn("serve: poll: %s", std::strerror(errno));
            return 3;
        }

        for (const auto &p : fds) {
            if (p.revents == 0)
                continue;
            if (p.fd == pipe_rd_) {
                char drainbuf[16];
                while (::read(pipe_rd_, drainbuf,
                              sizeof(drainbuf)) > 0) {
                }
                if (!draining_) {
                    draining_ = true;
                    drain_deadline_s_ =
                        monotonicSeconds() +
                        cfg_.core.drain_timeout_s;
                    core_.beginDrain();
                    if (listen_fd_ >= 0) {
                        ::close(listen_fd_);
                        listen_fd_ = -1;
                    }
                    sim::inform("serve: draining (%zu queued, "
                                "budget %.1f s)",
                                core_.admission().pending(),
                                cfg_.core.drain_timeout_s);
                }
            } else if (p.fd == listen_fd_) {
                if (p.revents & POLLIN)
                    acceptClients();
            } else {
                auto it = sessions_.find(p.fd);
                if (it == sessions_.end())
                    continue;
                if (p.revents & (POLLIN | POLLHUP | POLLERR))
                    readSession(it->second);
                if ((p.revents & POLLOUT) && !it->second.closing)
                    flushSession(it->second);
            }
        }

        // Reap sessions that finished closing (outbox flushed or
        // discarded). Collect first: dropSession mutates the map.
        std::vector<int> dead;
        for (auto &[fd, s] : sessions_)
            if (s.closing && s.outbox.empty())
                dead.push_back(fd);
        for (int fd : dead)
            dropSession(fd, /*notify_core=*/true);

        if (core_.hasPending()) {
            if (!draining_ ||
                monotonicSeconds() < drain_deadline_s_) {
                core_.dispatchBatch();
            } else {
                std::size_t n = core_.cancelPending();
                sim::warn("serve: drain budget exhausted; "
                          "cancelled %zu queued runs", n);
            }
        }

        if (draining_ && !core_.hasPending()) {
            // Give outboxes one bounded push, then leave.
            double flush_deadline =
                std::max(drain_deadline_s_,
                         monotonicSeconds() + 0.2);
            bool unsent = true;
            while (unsent &&
                   monotonicSeconds() < flush_deadline) {
                unsent = false;
                for (auto &[fd, s] : sessions_) {
                    flushSession(s);
                    if (!s.outbox.empty())
                        unsent = true;
                }
                if (unsent)
                    ::poll(nullptr, 0, 10);
            }
            break;
        }
    }

    for (auto &[fd, s] : sessions_)
        ::close(fd);
    sessions_.clear();
    ::close(pipe_rd_);
    ::close(g_signal_pipe_wr);
    g_signal_pipe_wr = -1;

    sim::inform("serve: drained; %s",
                core_.engine().summary().c_str());
    return 0;
}

} // namespace

int
runTcpServer(const TcpServerConfig &cfg,
             const std::function<void(ServeCore &)> &on_drained)
{
    Loop loop(cfg);
    int rc = loop.run();
    if (on_drained)
        on_drained(loop.core());
    return rc;
}

} // namespace mlps::serve
