/**
 * @file
 * Admission control for the simulation service: who gets in, and in
 * what order.
 *
 * Three cooperating mechanisms, all deterministic given the caller's
 * clock readings (tests inject synthetic times):
 *
 *  - TokenBucket: per-client rate limiting. Each client refills at
 *    `rate` tokens/s up to `burst`; a run request costs one token.
 *    A client that outruns its bucket gets an `overloaded` rejection
 *    with a retry_after hint of exactly the time until the next
 *    token — clients that honor the hint never spin.
 *
 *  - Bounded global queue: at most `max_queued` run requests may wait
 *    across all clients. Admitting past the bound rejects with
 *    `overloaded` (the service sheds load at the edge rather than
 *    growing an unbounded backlog that defeats deadlines).
 *
 *  - Weighted round-robin dispatch: pending requests are held in
 *    per-client FIFOs; the dispatcher drains them by cycling clients
 *    in lexicographic id order, taking up to `weight` requests from
 *    each before moving on. A client with a deep backlog cannot
 *    starve a light one, and the dispatch order is a pure function
 *    of the queue state — no timing dependence.
 */

#ifndef MLPSIM_SERVE_ADMISSION_H
#define MLPSIM_SERVE_ADMISSION_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace mlps::serve {

/** Classic token bucket with caller-supplied time. */
class TokenBucket
{
  public:
    /** @param rate tokens per second; @param burst bucket capacity. */
    TokenBucket(double rate, double burst)
        : rate_(rate), burst_(burst), tokens_(burst) {}

    /**
     * Try to take one token at time `now_s`. @return true when
     * admitted; false leaves the bucket untouched.
     */
    bool tryTake(double now_s);

    /** Seconds until the next token matures; 0 when one is ready. */
    double retryAfter(double now_s) const;

    double tokens(double now_s) const;

  private:
    void refill(double now_s);

    double rate_;
    double burst_;
    double tokens_;
    double last_s_ = 0.0;
};

/** Admission verdict for one run request. */
struct Admission {
    enum class Outcome {
        Admitted,   ///< queued for dispatch
        RateLimited, ///< client over its token budget
        QueueFull,  ///< global backlog bound reached
    };

    Outcome outcome = Outcome::Admitted;
    double retry_after_s = 0.0; ///< hint for the rejection line
};

/** Tuning knobs; defaults suit tests and small deployments. */
struct AdmissionConfig {
    double rate = 50.0;      ///< tokens/s per client
    double burst = 100.0;    ///< bucket capacity per client
    std::size_t max_queued = 256; ///< global pending-run bound
    std::size_t weight = 4;  ///< WRR quantum per client per cycle
};

/**
 * The pending-work structure: per-client FIFOs drained by weighted
 * round-robin. Single-threaded by design — the server core serializes
 * access under its own mutex.
 */
class AdmissionQueue
{
  public:
    /** One queued run request, identified for later dispatch. */
    struct Ticket {
        std::string client;   ///< owning client id
        std::uint64_t seq = 0; ///< server-wide admission sequence
    };

    explicit AdmissionQueue(AdmissionConfig cfg = {}) : cfg_(cfg) {}

    /**
     * Decide admission for client `client` at time `now_s`, and on
     * success enqueue a ticket with the next sequence number.
     */
    Admission offer(const std::string &client, double now_s,
                    std::uint64_t *seq_out);

    /**
     * Next batch to dispatch: up to `max_batch` tickets in weighted
     * round-robin order over clients (lexicographic id order, up to
     * cfg.weight consecutive tickets per client). Removes the
     * returned tickets from the queue.
     */
    std::vector<Ticket> takeBatch(std::size_t max_batch);

    /**
     * Drop every queued ticket of one client (disconnect path).
     * @return the dropped sequence numbers.
     */
    std::vector<std::uint64_t> cancelClient(const std::string &client);

    std::size_t pending() const { return pending_; }
    std::uint64_t admitted() const { return admitted_; }
    std::uint64_t rejectedRate() const { return rejected_rate_; }
    std::uint64_t rejectedFull() const { return rejected_full_; }

    const AdmissionConfig &config() const { return cfg_; }

  private:
    AdmissionConfig cfg_;
    std::map<std::string, TokenBucket> buckets_;
    std::map<std::string, std::deque<std::uint64_t>> fifos_;
    std::string cursor_; ///< WRR resume point (last served client)
    std::size_t pending_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t admitted_ = 0;
    std::uint64_t rejected_rate_ = 0;
    std::uint64_t rejected_full_ = 0;
};

} // namespace mlps::serve

#endif // MLPSIM_SERVE_ADMISSION_H
