#include "serve/session.h"

#include <cstring>

namespace mlps::serve {

bool
LineBuffer::feed(const char *data, std::size_t n,
                 std::vector<std::string> *lines)
{
    if (overflowed_)
        return false;
    std::size_t start = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (data[i] != '\n')
            continue;
        std::string line = std::move(partial_);
        partial_.clear();
        line.append(data + start, i - start);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.size() > max_line_) {
            overflowed_ = true;
            return false;
        }
        lines->push_back(std::move(line));
        start = i + 1;
    }
    partial_.append(data + start, n - start);
    if (partial_.size() > max_line_) {
        overflowed_ = true;
        return false;
    }
    return true;
}

} // namespace mlps::serve
