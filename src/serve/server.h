/**
 * @file
 * The long-running simulation service (`mlpsim serve`).
 *
 * Two layers, split so the interesting logic tests without sockets:
 *
 *  - ServeCore: transport-independent request broker. It owns the
 *    shared Engine (one hot RunCache + journal across every client),
 *    the validation Catalog, and the AdmissionQueue. Request lines go
 *    in; response lines come out through an emit callback keyed by
 *    client id. Admitted runs queue; dispatchBatch() drains them in
 *    weighted round-robin order through the engine, streaming each
 *    result line the moment the engine publishes it — duplicate
 *    requests across clients dedupe to one simulation, warm requests
 *    answer from cache before any cold point simulates.
 *
 *  - TcpServer: a poll()-based event loop putting ServeCore on a
 *    TCP socket. Line-delimited JSON per serve/protocol.h, one
 *    greeting per connection, non-blocking I/O with per-session
 *    outboxes. SIGTERM/SIGINT begin a graceful drain: admissions
 *    stop (status "draining"), queued work finishes inside the drain
 *    budget or is cancelled, outboxes flush, the journal is already
 *    durable (every append is flushed), and the process exits 0.
 *    A kill -9 instead loses nothing the journal recorded: the next
 *    start replays it and serves warm.
 *
 * Determinism: responses carry exactly the bytes a batch-mode run of
 * the same request would print (see protocol.h), because both paths
 * evaluate through the same Engine code and render doubles with
 * %.17g.
 */

#ifndef MLPSIM_SERVE_SERVER_H
#define MLPSIM_SERVE_SERVER_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "exec/engine.h"
#include "obs/registry.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "sim/counters.h"

namespace mlps::serve {

/** Configuration of the service core. */
struct ServeConfig {
    exec::ExecOptions exec;       ///< engine: jobs, cache, journal...
    AdmissionConfig admission;    ///< rate/queue/fairness knobs
    /** Deadline for requests that do not carry their own; 0 = none. */
    double default_deadline_s = 0.0;
    /** Drain budget after SIGTERM before queued work is cancelled. */
    double drain_timeout_s = 5.0;
    /** Most runs dispatched into the engine per batch. */
    std::size_t max_batch = 32;
};

/** Transport-independent request broker around one shared Engine. */
class ServeCore
{
  public:
    /** Response delivery: (client id, response line, no newline). */
    using Emit = std::function<void(const std::string &client,
                                    const std::string &line)>;

    ServeCore(const ServeConfig &cfg, Emit emit);

    /** Greet a new client. */
    void clientConnected(const std::string &client);

    /** Forget a client; its queued runs are cancelled unanswered. */
    void clientDisconnected(const std::string &client);

    /**
     * Process one request line at admission time `now_s` (any
     * monotonic clock; tests pass synthetic values). Emits every
     * immediate response; admitted runs wait for dispatchBatch().
     */
    void handleLine(const std::string &client, const std::string &line,
                    double now_s);

    /** Queued runs awaiting dispatch. */
    bool hasPending() const { return admission_.pending() > 0; }

    /**
     * Evaluate up to ServeConfig::max_batch queued runs through the
     * engine (weighted round-robin over clients, grouped by
     * effective deadline), streaming result lines as they publish.
     * @return runs dispatched.
     */
    std::size_t dispatchBatch();

    /** Stop admitting runs; subsequent run requests get "draining". */
    void beginDrain() { draining_ = true; }
    bool draining() const { return draining_; }

    /**
     * Cancel every queued run with a "draining" rejection (the drain
     * budget ran out). @return runs cancelled.
     */
    std::size_t cancelPending();

    /** Deterministic service counters as one JSON object. */
    std::string statsJson() const;

    exec::Engine &engine() { return engine_; }
    const AdmissionQueue &admission() const { return admission_; }
    std::uint64_t served() const { return served_; }

  private:
    /** One admitted run waiting for dispatch. */
    struct PendingRun {
        std::string client;
        std::string id;
        exec::RunRequest run;
        double deadline_s = 0.0;
        /** Host-clock admission instant, for latency sampling. */
        std::chrono::steady_clock::time_point submitted{};
    };

    ServeConfig cfg_;
    Emit emit_;
    Catalog catalog_;
    exec::Engine engine_;
    AdmissionQueue admission_;
    std::map<std::uint64_t, PendingRun> pending_;
    bool draining_ = false;
    std::uint64_t served_ = 0;
    std::uint64_t invalid_ = 0;
    std::uint64_t cancelled_ = 0;
    /**
     * Admission-to-response latency of served runs, milliseconds
     * (host wall clock — volatile, never part of deterministic
     * output; stats reports its p50/p95/p99).
     */
    sim::Sampler latency_ms_{"serve.request_latency_ms", true};
    obs::MetricRegistry::Registration latency_reg_ =
        obs::MetricRegistry::global().registerSampler(
            "serve.request_latency_ms", &latency_ms_,
            obs::Volatility::Volatile);
};

/** TCP endpoint configuration. */
struct TcpServerConfig {
    std::string host = "127.0.0.1";
    int port = 0;            ///< 0 = ephemeral (see port_file)
    std::string port_file;   ///< written with the bound port, if set
    ServeConfig core;
};

/**
 * Run the service until SIGTERM/SIGINT completes a graceful drain.
 * `on_drained`, if set, runs after the drain with the core still
 * alive — the CLI uses it to copy engine provenance into the
 * telemetry manifest before the engine (and its journal) shut down.
 * @return process exit code (0 on clean drain).
 */
int runTcpServer(const TcpServerConfig &cfg,
                 const std::function<void(ServeCore &)> &on_drained =
                     {});

} // namespace mlps::serve

#endif // MLPSIM_SERVE_SERVER_H
