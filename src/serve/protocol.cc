#include "serve/protocol.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "hw/precision.h"
#include "sys/machines.h"
#include "wl/import/diagnostics.h"
#include "wl/import/importer.h"

namespace mlps::serve {

namespace {

/** Object member as string; fallback when absent or mistyped. */
std::string
memberString(const Json &obj, const char *key,
             const std::string &fallback = {})
{
    const Json *m = obj.find(key);
    return m && m->isString() ? m->str : fallback;
}

double
memberNumber(const Json &obj, const char *key, double fallback)
{
    const Json *m = obj.find(key);
    return m && m->isNumber() ? m->number : fallback;
}

bool
memberBool(const Json &obj, const char *key, bool fallback)
{
    const Json *m = obj.find(key);
    return m && m->isBool() ? m->boolean : fallback;
}

void
appendField(std::string &b, const char *key, const std::string &value,
            bool *first)
{
    if (!*first)
        b += ",";
    *first = false;
    b += "\"";
    b += key;
    b += "\":\"";
    b += jsonEscape(value);
    b += "\"";
}

void
appendRaw(std::string &b, const char *key, const std::string &raw,
          bool *first)
{
    if (!*first)
        b += ",";
    *first = false;
    b += "\"";
    b += key;
    b += "\":";
    b += raw;
}

std::string
precisionToken(hw::Precision p)
{
    switch (p) {
    case hw::Precision::FP32: return "fp32";
    case hw::Precision::FP16: return "fp16";
    default: return "mixed";
    }
}

bool
precisionFromToken(const std::string &token, hw::Precision *out)
{
    if (token == "fp32")
        *out = hw::Precision::FP32;
    else if (token == "fp16")
        *out = hw::Precision::FP16;
    else if (token == "mixed")
        *out = hw::Precision::Mixed;
    else
        return false;
    return true;
}

/** The deterministic cells of one TrainResult, as a JSON object. */
std::string
encodeTrainResult(const train::TrainResult &t)
{
    std::string b = "{";
    bool first = true;
    appendField(b, "workload", t.workload, &first);
    appendField(b, "system", t.system, &first);
    appendRaw(b, "gpus", std::to_string(t.num_gpus), &first);
    appendField(b, "precision", precisionToken(t.precision), &first);
    appendRaw(b, "reference", t.reference_code ? "true" : "false",
              &first);
    appendRaw(b, "per_gpu_batch", jsonDouble(t.per_gpu_batch), &first);
    appendRaw(b, "global_batch", jsonDouble(t.global_batch), &first);
    appendRaw(b, "steps_per_epoch", jsonDouble(t.steps_per_epoch),
              &first);
    appendRaw(b, "epochs", jsonDouble(t.epochs), &first);
    appendRaw(b, "fwd_s", jsonDouble(t.iter.fwd_s), &first);
    appendRaw(b, "bwd_s", jsonDouble(t.iter.bwd_s), &first);
    appendRaw(b, "optimizer_s", jsonDouble(t.iter.optimizer_s),
              &first);
    appendRaw(b, "comm_s", jsonDouble(t.iter.comm_s), &first);
    appendRaw(b, "exposed_comm_s", jsonDouble(t.iter.exposed_comm_s),
              &first);
    appendRaw(b, "h2d_s", jsonDouble(t.iter.h2d_s), &first);
    appendRaw(b, "host_s", jsonDouble(t.iter.host_s), &first);
    appendRaw(b, "overhead_s", jsonDouble(t.iter.overhead_s), &first);
    appendRaw(b, "gpu_busy_s", jsonDouble(t.iter.gpu_busy_s), &first);
    appendRaw(b, "iteration_s", jsonDouble(t.iter.iteration_s),
              &first);
    appendRaw(b, "kernel_launches",
              std::to_string(t.iter.kernel_launches), &first);
    appendRaw(b, "micro_batches",
              std::to_string(t.iter.micro_batches), &first);
    appendRaw(b, "reroutes", std::to_string(t.iter.reroutes), &first);
    appendRaw(b, "cpu_util_pct", jsonDouble(t.usage.cpu_util_pct),
              &first);
    appendRaw(b, "gpu_util_pct_sum",
              jsonDouble(t.usage.gpu_util_pct_sum), &first);
    appendRaw(b, "dram_footprint_mb",
              jsonDouble(t.usage.dram_footprint_mb), &first);
    appendRaw(b, "hbm_footprint_mb",
              jsonDouble(t.usage.hbm_footprint_mb), &first);
    appendRaw(b, "pcie_mbps", jsonDouble(t.usage.pcie_mbps), &first);
    appendRaw(b, "nvlink_mbps", jsonDouble(t.usage.nvlink_mbps),
              &first);
    appendRaw(b, "fabric",
              std::to_string(static_cast<int>(t.fabric)), &first);
    appendRaw(b, "total_seconds", jsonDouble(t.total_seconds), &first);
    appendRaw(b, "achieved_flops", jsonDouble(t.achieved_flops),
              &first);
    appendRaw(b, "achieved_bytes_per_sec",
              jsonDouble(t.achieved_bytes_per_sec), &first);
    b += "}";
    return b;
}

void
decodeTrainResult(const Json &r, train::TrainResult *t)
{
    t->workload = memberString(r, "workload");
    t->system = memberString(r, "system");
    t->num_gpus = static_cast<int>(memberNumber(r, "gpus", 1));
    precisionFromToken(memberString(r, "precision", "mixed"),
                       &t->precision);
    t->reference_code = memberBool(r, "reference", false);
    t->per_gpu_batch = memberNumber(r, "per_gpu_batch", 0);
    t->global_batch = memberNumber(r, "global_batch", 0);
    t->steps_per_epoch = memberNumber(r, "steps_per_epoch", 0);
    t->epochs = memberNumber(r, "epochs", 0);
    t->iter.fwd_s = memberNumber(r, "fwd_s", 0);
    t->iter.bwd_s = memberNumber(r, "bwd_s", 0);
    t->iter.optimizer_s = memberNumber(r, "optimizer_s", 0);
    t->iter.comm_s = memberNumber(r, "comm_s", 0);
    t->iter.exposed_comm_s = memberNumber(r, "exposed_comm_s", 0);
    t->iter.h2d_s = memberNumber(r, "h2d_s", 0);
    t->iter.host_s = memberNumber(r, "host_s", 0);
    t->iter.overhead_s = memberNumber(r, "overhead_s", 0);
    t->iter.gpu_busy_s = memberNumber(r, "gpu_busy_s", 0);
    t->iter.iteration_s = memberNumber(r, "iteration_s", 0);
    t->iter.kernel_launches =
        static_cast<int>(memberNumber(r, "kernel_launches", 0));
    t->iter.micro_batches =
        static_cast<int>(memberNumber(r, "micro_batches", 0));
    t->iter.reroutes =
        static_cast<int>(memberNumber(r, "reroutes", 0));
    t->usage.cpu_util_pct = memberNumber(r, "cpu_util_pct", 0);
    t->usage.gpu_util_pct_sum =
        memberNumber(r, "gpu_util_pct_sum", 0);
    t->usage.dram_footprint_mb =
        memberNumber(r, "dram_footprint_mb", 0);
    t->usage.hbm_footprint_mb =
        memberNumber(r, "hbm_footprint_mb", 0);
    t->usage.pcie_mbps = memberNumber(r, "pcie_mbps", 0);
    t->usage.nvlink_mbps = memberNumber(r, "nvlink_mbps", 0);
    t->fabric = static_cast<net::CollectiveFabric>(
        static_cast<int>(memberNumber(r, "fabric", 0)));
    t->total_seconds = memberNumber(r, "total_seconds", 0);
    t->achieved_flops = memberNumber(r, "achieved_flops", 0);
    t->achieved_bytes_per_sec =
        memberNumber(r, "achieved_bytes_per_sec", 0);
}

} // namespace

// ---- Catalog --------------------------------------------------------

Catalog::Catalog() : machines(sys::allMachines())
{
    // Same alias the CLI accepts; the config itself (and hence the
    // fingerprint) is exactly sys::mlperfReference().
    machines.push_back(sys::mlperfReference());
}

const sys::SystemConfig *
Catalog::findMachine(const std::string &name, std::string *error) const
{
    for (const auto &m : machines) {
        if (m.name == name)
            return &m;
    }
    if (name == "reference")
        return &machines.back(); // the mlperfReference() slot

    // Everything else — pod grammar or a typo — goes through the
    // shared resolver, so this error text is byte-identical to the
    // CLI's. Built pods are big; cache them per spec string
    // (std::map nodes are pointer-stable across inserts).
    std::lock_guard<std::mutex> lock(pods_mu_);
    auto it = pods_.find(name);
    if (it != pods_.end())
        return &it->second;
    sys::SystemConfig built;
    std::string err;
    if (!sys::systemFromSpec(name, &built, &err)) {
        if (error)
            *error = err;
        return nullptr;
    }
    return &pods_.emplace(name, std::move(built)).first->second;
}

// ---- requests -------------------------------------------------------

bool
parseRequest(const std::string &line, const Catalog &catalog,
             ParsedRequest *out, std::string *error)
{
    if (line.size() > kMaxLineBytes) {
        *error = "request line too long";
        return false;
    }
    Json doc;
    if (!Json::parse(line, &doc, error)) {
        *error = "bad JSON: " + *error;
        return false;
    }
    if (!doc.isObject()) {
        *error = "request must be a JSON object";
        return false;
    }
    out->id = memberString(doc, "id");
    std::string type = memberString(doc, "type");
    if (type == "stats") {
        out->kind = ParsedRequest::Kind::Stats;
        return true;
    }
    if (type == "ping") {
        out->kind = ParsedRequest::Kind::Ping;
        return true;
    }
    if (type == "metrics") {
        out->kind = ParsedRequest::Kind::Metrics;
        std::string format = memberString(doc, "format");
        if (format.empty())
            format = "json";
        if (format != "json" && format != "prometheus") {
            *error = "unknown metrics format '" + format +
                     "' (expected json or prometheus)";
            return false;
        }
        out->metrics_format = format;
        return true;
    }
    if (type != "run") {
        *error = "unknown request type '" + type +
                 "' (expected run, stats, metrics or ping)";
        return false;
    }

    out->kind = ParsedRequest::Kind::Run;
    std::string workload = memberString(doc, "workload");
    const Json *graph_doc = doc.find("workload_graph");
    wl::WorkloadSpec imported;
    if (graph_doc) {
        // An inline mlpsim-graph-v1 document instead of a registry
        // name. It runs through the same importer as --workload-file,
        // so a rejected graph costs one `invalid` line carrying the
        // CLI's diagnostic vocabulary, never a simulation.
        if (!workload.empty()) {
            *error = "request carries both \"workload\" and "
                     "\"workload_graph\" (give one)";
            return false;
        }
        if (!graph_doc->isObject()) {
            *error = "\"workload_graph\" must be a JSON object";
            return false;
        }
        wl::import::ImportResult imp =
            wl::import::importParsed(*graph_doc, line);
        if (!imp.ok) {
            *error = "workload_graph rejected: " +
                     wl::import::summaryLine(imp);
            return false;
        }
        imported = std::move(imp.spec);
    } else if (workload.empty()) {
        *error = "run request needs a \"workload\"";
        return false;
    }
    const core::Benchmark *b = nullptr;
    if (!graph_doc) {
        b = catalog.registry.find(workload);
        if (!b) {
            *error = "unknown workload '" + workload + "'" +
                     core::didYouMean(workload,
                                      catalog.registry.names());
            return false;
        }
    }
    std::string system = memberString(doc, "system", "DSS 8440");
    const sys::SystemConfig *machine =
        catalog.findMachine(system, error);
    if (!machine)
        return false;

    // The same envelope the CLI enforces via gpusFrom().
    int gpus = static_cast<int>(memberNumber(doc, "gpus", 1));
    if (gpus <= 0 || (gpus & (gpus - 1)) != 0) {
        *error = "\"gpus\" must be a positive power of two (got " +
                 std::to_string(gpus) + ")";
        return false;
    }
    if (gpus > machine->num_gpus) {
        *error = "\"gpus\" " + std::to_string(gpus) + ": '" +
                 machine->name + "' only has " +
                 std::to_string(machine->num_gpus) + " GPUs";
        return false;
    }

    std::string precision = memberString(doc, "precision", "mixed");
    hw::Precision prec;
    if (!precisionFromToken(precision, &prec)) {
        *error = "unknown precision '" + precision +
                 "' (expected fp32, fp16 or mixed)";
        return false;
    }

    out->run.system = *machine;
    out->run.workload = graph_doc ? std::move(imported) : b->spec();
    out->run.options.num_gpus = gpus;
    out->run.options.precision = prec;
    out->run.options.reference_code =
        memberBool(doc, "reference", false);
    out->run.profiled = memberBool(doc, "profiled", false);
    out->deadline_s = memberNumber(doc, "deadline_s", 0.0);
    if (out->deadline_s < 0.0) {
        *error = "\"deadline_s\" must be >= 0";
        return false;
    }
    return true;
}

// ---- responses ------------------------------------------------------

std::string
encodeHello()
{
    return "{\"type\":\"hello\",\"proto\":" +
           std::to_string(kProtocolVersion) + "}";
}

std::string
encodeResult(const std::string &id, const exec::RunResult &result)
{
    std::string b = "{\"type\":\"result\",\"id\":\"" +
                    jsonEscape(id) + "\"";
    if (result.error) {
        b += ",\"status\":\"error\",\"reason\":\"" +
             jsonEscape(result.error->reason) + "\",\"what\":\"" +
             jsonEscape(result.error->what) + "\"";
        b += ",\"attempts\":" +
             std::to_string(result.error->attempts);
        b += "}";
        return b;
    }
    b += ",\"status\":\"ok\"";
    b += ",\"cache_hit\":";
    b += result.cache_hit ? "true" : "false";
    b += ",\"from_journal\":";
    b += result.from_journal ? "true" : "false";
    b += ",\"wall_ms\":" + jsonDouble(result.wall_seconds * 1e3);
    b += ",\"result\":" + encodeTrainResult(result.train);
    b += "}";
    return b;
}

std::string
encodeReject(const std::string &id, const std::string &status,
             const std::string &what, double retry_after_s)
{
    std::string b = "{\"type\":\"result\",\"id\":\"" +
                    jsonEscape(id) + "\",\"status\":\"" +
                    jsonEscape(status) + "\"";
    if (!what.empty())
        b += ",\"what\":\"" + jsonEscape(what) + "\"";
    if (retry_after_s > 0.0)
        b += ",\"retry_after_s\":" + jsonDouble(retry_after_s);
    b += "}";
    return b;
}

std::string
encodeStats(const std::string &id, const std::string &metrics_json)
{
    return "{\"type\":\"stats\",\"id\":\"" + jsonEscape(id) +
           "\",\"metrics\":" + metrics_json + "}";
}

std::string
encodeMetrics(const std::string &id, const std::string &format,
              const std::string &payload)
{
    std::string b = "{\"type\":\"metrics\",\"id\":\"" +
                    jsonEscape(id) + "\",\"format\":\"" +
                    jsonEscape(format) + "\",";
    if (format == "prometheus")
        b += "\"text\":\"" + jsonEscape(payload) + "\"";
    else
        b += "\"metrics\":" + payload;
    b += "}";
    return b;
}

std::string
encodePong(const std::string &id)
{
    return "{\"type\":\"pong\",\"id\":\"" + jsonEscape(id) + "\"}";
}

bool
decodeResponse(const std::string &line, Response *out,
               std::string *error)
{
    Json doc;
    if (!Json::parse(line, &doc, error)) {
        *error = "bad JSON: " + *error;
        return false;
    }
    if (!doc.isObject()) {
        *error = "response must be a JSON object";
        return false;
    }
    out->type = memberString(doc, "type");
    out->id = memberString(doc, "id");
    out->status = memberString(doc, "status");
    out->reason = memberString(doc, "reason");
    out->what = memberString(doc, "what");
    out->retry_after_s = memberNumber(doc, "retry_after_s", 0.0);
    out->proto = static_cast<int>(memberNumber(doc, "proto", 0));
    out->cache_hit = memberBool(doc, "cache_hit", false);
    out->from_journal = memberBool(doc, "from_journal", false);
    out->format = memberString(doc, "format");
    out->metrics_text = memberString(doc, "text");
    if (const Json *r = doc.find("result"); r && r->isObject())
        decodeTrainResult(*r, &out->train);
    if (const Json *m = doc.find("metrics"); m && m->isObject()) {
        // Keep the raw text: stats consumers print it verbatim.
        std::size_t open = line.find("\"metrics\":");
        if (open != std::string::npos)
            out->metrics_json =
                line.substr(open + std::strlen("\"metrics\":"));
        if (!out->metrics_json.empty() &&
            out->metrics_json.back() == '}')
            out->metrics_json.pop_back(); // outer object's closer
    }
    return true;
}

std::string
canonicalResultLine(const train::TrainResult &t)
{
    std::string b = t.workload + "|" + t.system + "|g" +
                    std::to_string(t.num_gpus) + "|" +
                    precisionToken(t.precision) +
                    (t.reference_code ? "|ref" : "|sub");
    auto cell = [&b](const char *key, double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), " %s=%.17g", key, v);
        b += buf;
    };
    cell("total_s", t.total_seconds);
    cell("iteration_s", t.iter.iteration_s);
    cell("fwd_s", t.iter.fwd_s);
    cell("bwd_s", t.iter.bwd_s);
    cell("optimizer_s", t.iter.optimizer_s);
    cell("comm_s", t.iter.comm_s);
    cell("exposed_comm_s", t.iter.exposed_comm_s);
    cell("h2d_s", t.iter.h2d_s);
    cell("host_s", t.iter.host_s);
    cell("overhead_s", t.iter.overhead_s);
    cell("gpu_busy_s", t.iter.gpu_busy_s);
    b += " launches=" + std::to_string(t.iter.kernel_launches);
    b += " micro=" + std::to_string(t.iter.micro_batches);
    b += " reroutes=" + std::to_string(t.iter.reroutes);
    cell("per_gpu_batch", t.per_gpu_batch);
    cell("global_batch", t.global_batch);
    cell("steps_per_epoch", t.steps_per_epoch);
    cell("epochs", t.epochs);
    cell("cpu_util_pct", t.usage.cpu_util_pct);
    cell("gpu_util_pct_sum", t.usage.gpu_util_pct_sum);
    cell("dram_mb", t.usage.dram_footprint_mb);
    cell("hbm_mb", t.usage.hbm_footprint_mb);
    cell("pcie_mbps", t.usage.pcie_mbps);
    cell("nvlink_mbps", t.usage.nvlink_mbps);
    b += " fabric=" + std::to_string(static_cast<int>(t.fabric));
    cell("achieved_flops", t.achieved_flops);
    cell("achieved_bps", t.achieved_bytes_per_sec);
    return b;
}

} // namespace mlps::serve
