/**
 * @file
 * Wire protocol of `mlpsim serve`: line-delimited JSON over TCP.
 *
 * Every message is one JSON object on one line, newline-terminated.
 * The server greets with a `hello` carrying the protocol version,
 * then answers each client request with exactly one response line
 * (responses to concurrent requests may interleave in completion
 * order; the echoed `id` correlates them).
 *
 * Requests:
 *   {"type":"run","id":"r1","workload":"MLPf_NCF_Py",
 *    "system":"DSS 8440","gpus":2,"precision":"mixed",
 *    "reference":false,"deadline_s":5.0}
 *   {"type":"stats","id":"s1"}
 *   {"type":"metrics","id":"m1","format":"json"}   (or "prometheus")
 *   {"type":"ping","id":"p1"}
 *
 * Responses:
 *   {"type":"hello","proto":1}
 *   {"type":"result","id":"r1","status":"ok","cache_hit":true,
 *    "result":{...the full deterministic result record...}}
 *   {"type":"result","id":"r1","status":"error","reason":"deadline",
 *    "what":"..."}
 *   {"type":"result","id":"r1","status":"overloaded",
 *    "retry_after_s":0.5}   (also status "draining" during shutdown)
 *   {"type":"result","id":"r1","status":"invalid","what":"..."}
 *   {"type":"stats","id":"s1","metrics":{...registry snapshot...}}
 *   {"type":"metrics","id":"m1","format":"json",
 *    "metrics":{...mlpsim-metrics-v1 snapshot...}}
 *   {"type":"metrics","id":"m1","format":"prometheus",
 *    "text":"...Prometheus exposition text, JSON-escaped..."}
 *   {"type":"pong","id":"p1"}
 *
 * Run requests are validated exactly like the CLI path (unknown
 * workload/system get a did-you-mean, GPU counts must be a power of
 * two the machine owns), so a malformed request costs one `invalid`
 * line, never a simulation. Instead of a registry "workload" name, a
 * run request may carry "workload_graph": an inline mlpsim-graph-v1
 * object (docs/WORKLOAD_IR.md) that runs through the same hardened
 * importer as `--workload-file`; a rejected graph answers with the
 * CLI's diagnostic vocabulary. The whole request still has to fit
 * one kMaxLineBytes line. Result doubles are rendered with %.17g,
 * which round-trips IEEE doubles exactly: a decoded result is
 * bit-identical to the simulated one, extending the byte-determinism
 * guarantee across the wire (see canonicalResultLine).
 */

#ifndef MLPSIM_SERVE_PROTOCOL_H
#define MLPSIM_SERVE_PROTOCOL_H

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/registry.h"
#include "exec/run_request.h"
#include "sim/json.h"
#include "sys/system_config.h"

namespace mlps::serve {

/** Protocol version announced in the hello line. */
constexpr int kProtocolVersion = 1;

/** Ceiling on one request line; longer lines are a protocol error. */
constexpr std::size_t kMaxLineBytes = 64 * 1024;

// ---- minimal JSON ---------------------------------------------------

/**
 * The protocol's JSON vocabulary is the shared bounded parser in
 * sim/json.h; the historical serve::Json spelling is kept as an
 * alias. The default parse() limits (depth 32, lenient numbers) are
 * byte-compatible with the parser that used to live here.
 */
using Json = sim::JsonValue;

/** JSON string escaping (quotes not included). */
using sim::jsonEscape;

/** Shortest round-trip rendering of a double (%.17g, bit-exact). */
using sim::jsonDouble;

// ---- requests -------------------------------------------------------

/**
 * Validation context, built once per server: the workload registry
 * and machine list every run request is resolved against.
 */
struct Catalog {
    Catalog();

    core::Registry registry;
    std::vector<sys::SystemConfig> machines; ///< incl. the reference box

    /**
     * Machine by name — a Table III name, "reference", or the pod
     * grammar `pod(<box>,<racks>x<nodes>[,spines=S])` (resolved by
     * sys::systemFromSpec, so the error vocabulary matches the CLI);
     * null + did-you-mean error when unknown. Built pods are cached
     * per spec string; safe to call from concurrent connections.
     */
    const sys::SystemConfig *findMachine(const std::string &name,
                                         std::string *error) const;

  private:
    mutable std::mutex pods_mu_;
    mutable std::map<std::string, sys::SystemConfig> pods_;
};

/** One parsed-and-validated client request. */
struct ParsedRequest {
    enum class Kind { Run, Stats, Metrics, Ping };

    Kind kind = Kind::Ping;
    std::string id;          ///< client correlation id (echoed back)
    exec::RunRequest run;    ///< populated for Kind::Run
    double deadline_s = 0.0; ///< per-request deadline; 0 = none
    /** Kind::Metrics only: "json" (default) or "prometheus". */
    std::string metrics_format = "json";
};

/**
 * Parse and validate one request line the way the CLI validates its
 * flags. @return false with a one-line diagnostic (including
 * did-you-mean suggestions) on any structural or semantic problem.
 */
bool parseRequest(const std::string &line, const Catalog &catalog,
                  ParsedRequest *out, std::string *error);

// ---- responses ------------------------------------------------------

/** Server greeting. */
std::string encodeHello();

/** Successful (or error-carrying) evaluation of a run request. */
std::string encodeResult(const std::string &id,
                         const exec::RunResult &result);

/** Rejection: status is "overloaded", "draining" or "invalid". */
std::string encodeReject(const std::string &id,
                         const std::string &status,
                         const std::string &what,
                         double retry_after_s = 0.0);

/** Stats response embedding a pre-rendered metrics JSON document. */
std::string encodeStats(const std::string &id,
                        const std::string &metrics_json);

/**
 * Metrics response. `format` is "json" (payload embedded raw, an
 * mlpsim-metrics-v1 document) or "prometheus" (payload carried as an
 * escaped JSON string under "text").
 */
std::string encodeMetrics(const std::string &id,
                          const std::string &format,
                          const std::string &payload);

/** Ping acknowledgement. */
std::string encodePong(const std::string &id);

/** Client-side view of one decoded response line. */
struct Response {
    std::string type;   ///< hello | result | stats | metrics | pong
    std::string id;
    std::string status; ///< ok | error | invalid | overloaded | draining
    std::string reason; ///< error class, for status "error"
    std::string what;   ///< human diagnostic
    double retry_after_s = 0.0;
    int proto = 0;      ///< hello only
    bool cache_hit = false;
    bool from_journal = false;
    train::TrainResult train;  ///< status "ok" only
    std::string metrics_json;  ///< stats / metrics-json (raw JSON)
    std::string format;        ///< metrics only: json | prometheus
    std::string metrics_text;  ///< metrics-prometheus exposition text
};

/** Decode one response line. @return false + error on junk. */
bool decodeResponse(const std::string &line, Response *out,
                    std::string *error);

/**
 * Canonical single-line rendering of the deterministic result cells
 * (every field the journal persists, doubles as %.17g). The serve
 * smoke test byte-compares this line between a served response and a
 * locally simulated batch run: equal lines prove the service returned
 * bit-identical numbers. Volatile fields (cache hit, wall time,
 * attempts) are deliberately excluded.
 */
std::string canonicalResultLine(const train::TrainResult &t);

} // namespace mlps::serve

#endif // MLPSIM_SERVE_PROTOCOL_H
