#include "serve/client.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mlps::serve {

bool
parseEndpoint(const std::string &spec, std::string *host, int *port,
              std::string *error)
{
    std::string portpart = spec;
    *host = "127.0.0.1";
    std::size_t colon = spec.rfind(':');
    if (colon != std::string::npos) {
        if (colon > 0)
            *host = spec.substr(0, colon);
        portpart = spec.substr(colon + 1);
    }
    char *end = nullptr;
    long p = std::strtol(portpart.c_str(), &end, 10);
    if (portpart.empty() || *end != '\0' || p < 1 || p > 65535) {
        if (error)
            *error = "bad endpoint '" + spec +
                     "' (expected host:port)";
        return false;
    }
    *port = static_cast<int>(p);
    return true;
}

Connection::~Connection() { close(); }

void
Connection::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Connection::dial(const std::string &host, int port,
                 std::string *error)
{
    close();
    inbox_.clear(); // a failed prior dial may have buffered bytes
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        *error = "bad address '" + host + "'";
        close();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        *error = "connect " + host + ":" + std::to_string(port) +
                 ": " + std::strerror(errno);
        close();
        return false;
    }
    std::string hello;
    if (!recvLine(&hello, error))
        return false;
    Response r;
    if (!decodeResponse(hello, &r, error) || r.type != "hello") {
        *error = "unexpected greeting: " + hello;
        close();
        return false;
    }
    proto_ = r.proto;
    return true;
}

bool
Connection::sendLine(const std::string &line, std::string *error)
{
    std::string framed = line;
    framed += '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
        ssize_t n = ::send(fd_, framed.data() + off,
                           framed.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            *error = std::string("send: ") + std::strerror(errno);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
Connection::recvLine(std::string *line, std::string *error)
{
    for (;;) {
        std::size_t nl = inbox_.find('\n');
        if (nl != std::string::npos) {
            *line = inbox_.substr(0, nl);
            inbox_.erase(0, nl + 1);
            if (!line->empty() && line->back() == '\r')
                line->pop_back();
            return true;
        }
        char buf[4096];
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            inbox_.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        *error = n == 0 ? "connection closed by server"
                        : std::string("recv: ") +
                              std::strerror(errno);
        return false;
    }
}

bool
Connection::roundTrip(const std::string &request, Response *response,
                      std::string *error)
{
    if (!sendLine(request, error))
        return false;
    std::string line;
    if (!recvLine(&line, error))
        return false;
    return decodeResponse(line, response, error);
}

} // namespace mlps::serve
