#include "serve/admission.h"

#include <algorithm>

namespace mlps::serve {

// ---- TokenBucket ----------------------------------------------------

void
TokenBucket::refill(double now_s)
{
    if (now_s <= last_s_)
        return;
    tokens_ = std::min(burst_, tokens_ + (now_s - last_s_) * rate_);
    last_s_ = now_s;
}

bool
TokenBucket::tryTake(double now_s)
{
    refill(now_s);
    if (tokens_ < 1.0)
        return false;
    tokens_ -= 1.0;
    return true;
}

double
TokenBucket::retryAfter(double now_s) const
{
    double t = tokens_;
    if (now_s > last_s_)
        t = std::min(burst_, t + (now_s - last_s_) * rate_);
    if (t >= 1.0 || rate_ <= 0.0)
        return 0.0;
    return (1.0 - t) / rate_;
}

double
TokenBucket::tokens(double now_s) const
{
    double t = tokens_;
    if (now_s > last_s_)
        t = std::min(burst_, t + (now_s - last_s_) * rate_);
    return t;
}

// ---- AdmissionQueue -------------------------------------------------

Admission
AdmissionQueue::offer(const std::string &client, double now_s,
                      std::uint64_t *seq_out)
{
    Admission a;
    if (pending_ >= cfg_.max_queued) {
        a.outcome = Admission::Outcome::QueueFull;
        // The backlog drains at simulation speed, which the server
        // cannot bound; a short fixed hint spreads retries without
        // promising anything.
        a.retry_after_s = 0.5;
        ++rejected_full_;
        return a;
    }
    auto [it, inserted] = buckets_.try_emplace(
        client, cfg_.rate, cfg_.burst);
    (void)inserted;
    if (!it->second.tryTake(now_s)) {
        a.outcome = Admission::Outcome::RateLimited;
        a.retry_after_s = it->second.retryAfter(now_s);
        ++rejected_rate_;
        return a;
    }
    std::uint64_t seq = next_seq_++;
    fifos_[client].push_back(seq);
    ++pending_;
    ++admitted_;
    if (seq_out)
        *seq_out = seq;
    return a;
}

std::vector<AdmissionQueue::Ticket>
AdmissionQueue::takeBatch(std::size_t max_batch)
{
    std::vector<Ticket> out;
    if (pending_ == 0 || max_batch == 0)
        return out;
    const std::size_t quantum = std::max<std::size_t>(1, cfg_.weight);

    // Resume the cycle just past the last client served, so a single
    // heavy client interleaves fairly with everyone else across
    // successive batches, not just within one.
    auto it = fifos_.upper_bound(cursor_);
    std::size_t idle_sweeps = 0;
    while (out.size() < max_batch && pending_ > 0) {
        if (it == fifos_.end()) {
            it = fifos_.begin();
            if (++idle_sweeps > fifos_.size() + 1)
                break; // defensive: nothing left anywhere
        }
        std::deque<std::uint64_t> &fifo = it->second;
        std::size_t take =
            std::min({quantum, fifo.size(), max_batch - out.size()});
        if (take > 0)
            idle_sweeps = 0;
        for (std::size_t i = 0; i < take; ++i) {
            out.push_back(Ticket{it->first, fifo.front()});
            fifo.pop_front();
            --pending_;
        }
        cursor_ = it->first;
        if (fifo.empty())
            it = fifos_.erase(it);
        else
            ++it;
    }
    return out;
}

std::vector<std::uint64_t>
AdmissionQueue::cancelClient(const std::string &client)
{
    std::vector<std::uint64_t> dropped;
    auto it = fifos_.find(client);
    if (it == fifos_.end())
        return dropped;
    dropped.assign(it->second.begin(), it->second.end());
    pending_ -= it->second.size();
    fifos_.erase(it);
    return dropped;
}

} // namespace mlps::serve
