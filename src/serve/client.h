/**
 * @file
 * Minimal blocking client for the serve protocol: `mlpsim query`,
 * the smoke tests and the latency bench all speak through this.
 */

#ifndef MLPSIM_SERVE_CLIENT_H
#define MLPSIM_SERVE_CLIENT_H

#include <string>

#include "serve/protocol.h"

namespace mlps::serve {

/**
 * Split "host:port" (or bare ":port" / "port") into parts.
 * @return false + error on an unparsable port.
 */
bool parseEndpoint(const std::string &spec, std::string *host,
                   int *port, std::string *error);

/** One blocking TCP connection to a serve endpoint. */
class Connection
{
  public:
    Connection() = default;
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    /**
     * Connect and consume the server's hello line.
     * @return false + error when the dial or greeting fails.
     */
    bool dial(const std::string &host, int port, std::string *error);

    /** Send one request line (the newline is appended here). */
    bool sendLine(const std::string &line, std::string *error);

    /** Block for the next response line (without its newline). */
    bool recvLine(std::string *line, std::string *error);

    /** sendLine + recvLine + decodeResponse, for simple callers. */
    bool roundTrip(const std::string &request, Response *response,
                   std::string *error);

    /** Protocol version from the hello; 0 before dial(). */
    int serverProto() const { return proto_; }

    bool connected() const { return fd_ >= 0; }
    void close();

  private:
    int fd_ = -1;
    int proto_ = 0;
    std::string inbox_; ///< bytes read past the last returned line
};

} // namespace mlps::serve

#endif // MLPSIM_SERVE_CLIENT_H
