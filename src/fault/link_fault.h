/**
 * @file
 * Link/device fault domain: interconnect-level degradations.
 *
 * FaultModel (fault_model.h) covers node-scoped faults — GPU stalls,
 * preemptions, host hiccups — that scale a run's throughput. This
 * file covers the *fabric*: NVLink lanes drop, PCIe links downtrain,
 * links go hard-down, and thermally-throttled GPUs straggle the
 * ring. These faults change the topology itself, so consumers apply
 * a trace to a net::Topology (bandwidth scales, down links) and let
 * routing, P2P legality, and collective fabric selection re-answer
 * against the degraded graph.
 *
 * The generator follows the same determinism contract as FaultModel:
 * every class draws from its own forked Rng stream, forked in a
 * fixed order regardless of which classes are enabled, so enabling
 * or re-parameterising link faults never perturbs node-fault traces
 * (they use a separate model and seed entirely) or sibling link
 * classes.
 */

#ifndef MLPSIM_FAULT_LINK_FAULT_H
#define MLPSIM_FAULT_LINK_FAULT_H

#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.h"
#include "sim/rng.h"

namespace mlps::fault {

/** Classes of interconnect faults. */
enum class LinkFaultKind {
    /** NVLink lane degradation: an NVLink edge loses bricks/lanes. */
    NvLinkLaneDegrade,
    /** PCIe downtraining: a PCIe edge renegotiates to fewer lanes. */
    PcieDowntrain,
    /** Hard link failure: an edge carries no traffic until healed. */
    LinkDown,
    /** Thermal throttle: one GPU slows and straggles collectives. */
    ThermalThrottle,
    /** NIC flap: a host's ToR uplink bounces (down until healed). */
    NicFlap,
    /** ToR failure: a rack's switch dies, downing every incident link. */
    TorDown,
    /**
     * Oversubscribed spine: pod-wide congestion scales every
     * cross-rack link's bandwidth while active.
     */
    SpineOversubscribed,
};

/**
 * Number of link-fault classes (for iteration). New classes are
 * appended — RNG streams are forked in enum order before any
 * eligibility check, so traces on topologies that predate a class
 * (e.g. single boxes, which have no NICs) are bit-identical to the
 * 4-class era.
 */
inline constexpr int kNumLinkFaultKinds = 7;

/** Human-readable link-fault-class name. */
std::string toString(LinkFaultKind kind);

/**
 * True for classes that take links hard-down (LinkDown, NicFlap,
 * TorDown) rather than scaling bandwidth.
 */
bool isDownKind(LinkFaultKind kind);

/** One link-fault occurrence within a trace. */
struct LinkFaultEvent {
    LinkFaultKind kind = LinkFaultKind::LinkDown;
    /** Onset, seconds from run start. */
    double start_s = 0.0;
    /** Degradation window, seconds; <= 0 means permanent. */
    double duration_s = 0.0;
    /**
     * Bandwidth (or, for ThermalThrottle, compute throughput)
     * retained while active: 1.0 = unaffected. 0.0 for LinkDown.
     */
    double bandwidth_scale = 1.0;
    /** Affected topology edge id, or -1 (node/GPU/fabric-scoped). */
    int edge = -1;
    /** Affected GPU ordinal (ThermalThrottle), or -1. */
    int gpu = -1;
    /**
     * Affected topology node id (TorDown — the event downs every
     * link incident to this node), or -1. SpineOversubscribed is
     * fabric-wide: edge, gpu and node are all -1.
     */
    int node = -1;

    /** True when the event is active at time t. */
    bool activeAt(double t) const
    {
        if (t < start_s)
            return false;
        return duration_s <= 0.0 || t < start_s + duration_s;
    }
};

/** Arrival/impact parameters of one link-fault class. */
struct LinkFaultClassConfig {
    /** Mean time to failure, hours; <= 0 disables the class. */
    double mttf_hours = 0.0;
    /** Mean degradation-window length, seconds. */
    double mean_duration_s = 0.0;
    /** Mean retained bandwidth/throughput while active, in (0, 1). */
    double mean_bandwidth_scale = 0.5;
};

/** Full link-fault trace-generation configuration. */
struct LinkFaultConfig {
    LinkFaultClassConfig nvlink_lane_degrade{0.0, 300.0, 0.50};
    LinkFaultClassConfig pcie_downtrain{0.0, 600.0, 0.50};
    LinkFaultClassConfig link_down{0.0, 120.0, 0.0};
    LinkFaultClassConfig thermal_throttle{0.0, 180.0, 0.70};
    // Pod-scale classes: no eligible target on a single box, so
    // enabling them leaves single-box traces untouched.
    LinkFaultClassConfig nic_flap{0.0, 30.0, 0.0};
    LinkFaultClassConfig tor_down{0.0, 900.0, 0.0};
    LinkFaultClassConfig spine_oversubscribed{0.0, 600.0, 0.40};

    /** Access by kind. */
    const LinkFaultClassConfig &classFor(LinkFaultKind kind) const;
    LinkFaultClassConfig &classFor(LinkFaultKind kind);

    /**
     * A representative datacenter fabric profile scaled around one
     * aggregate MTTF: lane drops and downtraining dominate, hard
     * link failures are rare. The pod-scale classes (NIC flaps,
     * ToR failures, spine oversubscription) are enabled with their
     * own weights on top; on single-box topologies they find no
     * eligible target and the trace matches the box-only profile.
     * @param mttf_hours aggregate mean time between *any* box-local
     *        link faults (the historical normalisation, kept so
     *        existing single-box traces reproduce bit-identically).
     */
    static LinkFaultConfig datacenterProfile(double mttf_hours);

    /** True when every class is disabled. */
    bool allDisabled() const;

    /** Sanity-check parameter ranges; fatal() when malformed. */
    void validate() const;
};

/**
 * Deterministic link-fault trace generator.
 *
 * Edge/GPU targets are drawn from the topology handed to generate(),
 * using only its static structure (edge order, link kinds), so the
 * same seed and topology always yield the bit-identical trace.
 */
class LinkFaultModel
{
  public:
    LinkFaultModel(const LinkFaultConfig &config, std::uint64_t seed);

    const LinkFaultConfig &config() const { return config_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * Generate the link-fault trace over [0, horizon_s), sorted by
     * onset. Classes with no eligible target in the topology (e.g.
     * NvLinkLaneDegrade on an all-PCIe box) emit nothing, but their
     * stream is still forked — isolation holds regardless.
     */
    std::vector<LinkFaultEvent> generate(double horizon_s,
                                         const net::Topology &topo) const;

  private:
    LinkFaultConfig config_;
    std::uint64_t seed_;
};

/**
 * Apply every event active at time at_s to the topology's dynamic
 * link state (after resetting it): LinkDown and NicFlap take their
 * edge down, TorDown takes every link incident to its switch down,
 * SpineOversubscribed scales every cross-rack link, and the degrade
 * classes multiply edge bandwidth scales (stacking faults compound).
 * ThermalThrottle does not touch the graph.
 *
 * @return the slowest active GPU throughput scale (min over active
 *         ThermalThrottle events; 1.0 when none) — feed it to
 *         AllReduceParams::slowest_participant_scale.
 */
double applyLinkFaults(net::Topology &topo,
                       const std::vector<LinkFaultEvent> &trace,
                       double at_s);

/** Render a link-fault trace as an aligned text table. */
std::string describeLinkTrace(const std::vector<LinkFaultEvent> &trace,
                              const net::Topology &topo);

} // namespace mlps::fault

#endif // MLPSIM_FAULT_LINK_FAULT_H
