/**
 * @file
 * Stochastic failure-trace generation for fault-tolerant training
 * studies.
 *
 * Real MLPerf-class runs are punctuated by transient GPU stalls,
 * link flaps, host-pipeline hiccups, ECC retry storms, and outright
 * preemptions — none of which the steady-state Trainer model sees.
 * FaultModel turns per-class MTTF parameters into a deterministic,
 * seed-reproducible event trace using the discrete-event Simulation
 * core: each fault class owns a forked Rng stream, arrivals are
 * exponential with the configured MTTF, and durations/severities are
 * drawn from the class's distribution. The same seed always yields
 * the bit-identical trace, so whole-suite fault studies stay
 * reproducible.
 */

#ifndef MLPSIM_FAULT_FAULT_MODEL_H
#define MLPSIM_FAULT_FAULT_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace mlps::fault {

/** Classes of faults the trace generator can emit. */
enum class FaultKind {
    /** Transient straggler epoch: one GPU computes slower for a while. */
    GpuStall,
    /** Link flap: an interconnect link runs at degraded bandwidth. */
    LinkFlap,
    /** Host-pipeline hiccup: preprocessing throughput drops. */
    HostHiccup,
    /** ECC retry storm: HBM bandwidth degraded on one GPU. */
    EccRetryStorm,
    /** Job preemption/kill: all work since the last checkpoint is lost. */
    Preemption,
    /** Permanent GPU loss: the device drops out for the rest of the run. */
    GpuLoss,
};

/** Number of fault classes (for iteration). */
inline constexpr int kNumFaultKinds = 6;

/** Human-readable fault-class name. */
std::string toString(FaultKind kind);

/** One fault occurrence within a trace. */
struct FaultEvent {
    FaultKind kind = FaultKind::GpuStall;
    /** Onset, seconds from run start. */
    double start_s = 0.0;
    /** Degradation window length, seconds (0 for point events). */
    double duration_s = 0.0;
    /**
     * Throughput retention while the fault is active: 1.0 = unaffected,
     * 0.5 = half speed, 0.0 = fully stopped. Point events (Preemption,
     * GpuLoss) carry 0.0.
     */
    double severity = 1.0;
    /** Affected GPU index, or -1 when the fault is machine-wide. */
    int resource = -1;
};

/** Arrival/impact parameters of one fault class. */
struct FaultClassConfig {
    /** Mean time to failure, hours; <= 0 disables the class. */
    double mttf_hours = 0.0;
    /** Mean degradation-window length, seconds (point events: 0). */
    double mean_duration_s = 0.0;
    /** Mean throughput retention while active, in (0, 1]. */
    double mean_severity = 1.0;
};

/** Full trace-generation configuration. */
struct FaultModelConfig {
    FaultClassConfig gpu_stall{0.0, 30.0, 0.55};
    FaultClassConfig link_flap{0.0, 45.0, 0.35};
    FaultClassConfig host_hiccup{0.0, 20.0, 0.50};
    FaultClassConfig ecc_retry_storm{0.0, 60.0, 0.70};
    FaultClassConfig preemption{0.0, 0.0, 0.0};
    FaultClassConfig gpu_loss{0.0, 0.0, 0.0};

    /** Access by kind. */
    const FaultClassConfig &classFor(FaultKind kind) const;
    FaultClassConfig &classFor(FaultKind kind);

    /**
     * A representative datacenter profile scaled around one aggregate
     * MTTF: transient classes fire more often than hard failures, in
     * roughly the ratios reported by large-cluster failure studies.
     * @param mttf_hours aggregate mean time between *any* faults.
     */
    static FaultModelConfig datacenterProfile(double mttf_hours);

    /** True when every class is disabled. */
    bool allDisabled() const;

    /** Aggregate fault arrival rate, events per hour. */
    double totalRatePerHour() const;

    /** Sanity-check parameter ranges; fatal() when malformed. */
    void validate() const;
};

/**
 * Deterministic failure-trace generator.
 *
 * Each fault class draws from its own forked Rng stream, so enabling
 * or re-parameterising one class never perturbs another class's
 * arrivals — traces stay comparable across configurations.
 */
class FaultModel
{
  public:
    FaultModel(const FaultModelConfig &config, std::uint64_t seed);

    const FaultModelConfig &config() const { return config_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * Generate the fault trace over [0, horizon_s), sorted by onset.
     *
     * @param horizon_s trace length, seconds.
     * @param num_gpus devices to spread GPU-scoped faults over.
     */
    std::vector<FaultEvent> generate(double horizon_s,
                                     int num_gpus) const;

  private:
    FaultModelConfig config_;
    std::uint64_t seed_;
};

/** Render a trace as an aligned text table (debugging/CLI). */
std::string describeTrace(const std::vector<FaultEvent> &trace);

} // namespace mlps::fault

#endif // MLPSIM_FAULT_FAULT_MODEL_H
