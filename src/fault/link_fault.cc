#include "fault/link_fault.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>

#include "sim/event_queue.h"
#include "sim/logger.h"

namespace mlps::fault {

namespace {

constexpr LinkFaultKind kAllLinkKinds[kNumLinkFaultKinds] = {
    LinkFaultKind::NvLinkLaneDegrade,
    LinkFaultKind::PcieDowntrain,
    LinkFaultKind::LinkDown,
    LinkFaultKind::ThermalThrottle,
    LinkFaultKind::NicFlap,
    LinkFaultKind::TorDown,
    LinkFaultKind::SpineOversubscribed,
};

/** What a class strikes: one edge, one GPU, one node, or the fabric. */
enum class Scope { Edge, Gpu, Node, Fabric };

Scope
scopeOf(LinkFaultKind kind)
{
    switch (kind) {
      case LinkFaultKind::ThermalThrottle: return Scope::Gpu;
      case LinkFaultKind::TorDown: return Scope::Node;
      case LinkFaultKind::SpineOversubscribed: return Scope::Fabric;
      default: return Scope::Edge;
    }
}

/** Exponential deviate with the given mean. */
double
exponential(sim::Rng &rng, double mean)
{
    double u = std::max(rng.uniform(), 1e-12);
    return -mean * std::log(u);
}

/** Edge ids a class can strike, in deterministic (id) order. */
std::vector<int>
eligibleEdges(LinkFaultKind kind, const net::Topology &topo)
{
    std::vector<int> out;
    for (int e = 0; e < topo.edgeCount(); ++e) {
        net::LinkKind lk = topo.link(e).kind;
        bool ok = false;
        switch (kind) {
          case LinkFaultKind::NvLinkLaneDegrade:
            ok = lk == net::LinkKind::NvLink;
            break;
          case LinkFaultKind::PcieDowntrain:
            ok = lk == net::LinkKind::Pcie3;
            break;
          case LinkFaultKind::LinkDown:
            // Hard failures hit the GPU fabric; UPI is part of the
            // CPU package and modeled as always up. Datacenter-tier
            // Ethernet has its own flap/switch classes below.
            ok = lk != net::LinkKind::Upi && lk != net::LinkKind::Eth;
            break;
          case LinkFaultKind::NicFlap:
            // A flap bounces the host's ToR uplink, not the spine
            // layer: Ethernet at the intra-rack tier.
            ok = lk == net::LinkKind::Eth &&
                 topo.link(e).tier == net::FabricTier::IntraRack;
            break;
          case LinkFaultKind::SpineOversubscribed:
            // Eligibility only — the event hits every cross-rack
            // link at once, no single edge is drawn.
            ok = topo.link(e).tier == net::FabricTier::CrossRack;
            break;
          case LinkFaultKind::ThermalThrottle:
          case LinkFaultKind::TorDown:
            break;
        }
        if (ok)
            out.push_back(e);
    }
    return out;
}

/** Node ids a node-scoped class can strike, in id order. */
std::vector<int>
eligibleNodes(LinkFaultKind kind, const net::Topology &topo)
{
    std::vector<int> out;
    if (kind != LinkFaultKind::TorDown)
        return out;
    for (net::NodeId n : topo.nodesOfKind(net::NodeKind::TorSwitch))
        out.push_back(n);
    return out;
}

} // namespace

std::string
toString(LinkFaultKind kind)
{
    switch (kind) {
      case LinkFaultKind::NvLinkLaneDegrade: return "nvlink-lane-degrade";
      case LinkFaultKind::PcieDowntrain: return "pcie-downtrain";
      case LinkFaultKind::LinkDown: return "link-down";
      case LinkFaultKind::ThermalThrottle: return "thermal-throttle";
      case LinkFaultKind::NicFlap: return "nic-flap";
      case LinkFaultKind::TorDown: return "tor-down";
      case LinkFaultKind::SpineOversubscribed:
        return "spine-oversubscribed";
    }
    sim::panic("toString: bad LinkFaultKind %d", static_cast<int>(kind));
}

bool
isDownKind(LinkFaultKind kind)
{
    return kind == LinkFaultKind::LinkDown ||
           kind == LinkFaultKind::NicFlap ||
           kind == LinkFaultKind::TorDown;
}

const LinkFaultClassConfig &
LinkFaultConfig::classFor(LinkFaultKind kind) const
{
    return const_cast<LinkFaultConfig *>(this)->classFor(kind);
}

LinkFaultClassConfig &
LinkFaultConfig::classFor(LinkFaultKind kind)
{
    switch (kind) {
      case LinkFaultKind::NvLinkLaneDegrade: return nvlink_lane_degrade;
      case LinkFaultKind::PcieDowntrain: return pcie_downtrain;
      case LinkFaultKind::LinkDown: return link_down;
      case LinkFaultKind::ThermalThrottle: return thermal_throttle;
      case LinkFaultKind::NicFlap: return nic_flap;
      case LinkFaultKind::TorDown: return tor_down;
      case LinkFaultKind::SpineOversubscribed:
        return spine_oversubscribed;
    }
    sim::panic("classFor: bad LinkFaultKind %d", static_cast<int>(kind));
}

LinkFaultConfig
LinkFaultConfig::datacenterProfile(double mttf_hours)
{
    if (mttf_hours <= 0.0)
        sim::fatal("LinkFaultConfig: MTTF %g hours must be positive",
                   mttf_hours);
    // Relative arrival weights (sum to 1 so the aggregate rate is
    // 1/mttf_hours): lane drops and downtraining dominate, hard
    // failures are rare, throttling sits in between.
    LinkFaultConfig cfg;
    cfg.nvlink_lane_degrade = {mttf_hours / 0.40, 300.0, 0.50};
    cfg.pcie_downtrain = {mttf_hours / 0.25, 600.0, 0.50};
    cfg.thermal_throttle = {mttf_hours / 0.28, 180.0, 0.70};
    cfg.link_down = {mttf_hours / 0.07, 120.0, 0.0};
    // Pod-scale classes ride on top of the box-local normalisation
    // above (those four weights are frozen so single-box traces
    // reproduce): NIC flaps are frequent and brief, ToR failures
    // rare and long, spine congestion episodic.
    cfg.nic_flap = {mttf_hours / 0.30, 30.0, 0.0};
    cfg.tor_down = {mttf_hours / 0.05, 900.0, 0.0};
    cfg.spine_oversubscribed = {mttf_hours / 0.20, 600.0, 0.40};
    return cfg;
}

bool
LinkFaultConfig::allDisabled() const
{
    for (LinkFaultKind kind : kAllLinkKinds) {
        if (classFor(kind).mttf_hours > 0.0)
            return false;
    }
    return true;
}

void
LinkFaultConfig::validate() const
{
    for (LinkFaultKind kind : kAllLinkKinds) {
        const LinkFaultClassConfig &c = classFor(kind);
        if (c.mttf_hours <= 0.0)
            continue; // disabled
        if (c.mean_duration_s <= 0.0)
            sim::fatal("LinkFaultConfig: %s needs a positive mean "
                       "duration (got %g s)",
                       toString(kind).c_str(), c.mean_duration_s);
        if (isDownKind(kind))
            continue; // scale unused (link carries nothing)
        if (c.mean_bandwidth_scale <= 0.0 ||
            c.mean_bandwidth_scale >= 1.0)
            sim::fatal("LinkFaultConfig: %s bandwidth scale %g out of "
                       "(0, 1)",
                       toString(kind).c_str(), c.mean_bandwidth_scale);
    }
}

LinkFaultModel::LinkFaultModel(const LinkFaultConfig &config,
                               std::uint64_t seed)
    : config_(config), seed_(seed)
{
    config_.validate();
}

std::vector<LinkFaultEvent>
LinkFaultModel::generate(double horizon_s, const net::Topology &topo) const
{
    if (horizon_s < 0.0)
        sim::fatal("LinkFaultModel: negative horizon %g s", horizon_s);
    if (topo.nodeCount() == 0)
        sim::fatal("LinkFaultModel: empty topology");

    std::vector<LinkFaultEvent> trace;
    if (config_.allDisabled() || horizon_s == 0.0)
        return trace;

    std::vector<net::NodeId> gpus = topo.gpus();

    // One decorrelated stream per class, forked in a fixed order
    // (including disabled classes and classes with no eligible
    // target) so a class's arrivals never depend on its siblings.
    sim::Rng root(seed_);
    sim::Simulation simulation;
    const sim::SimTime horizon = sim::fromSeconds(horizon_s);

    // Closures and streams outlive the scheduling loop; a closure
    // captures raw pointers into these pools (never a handle to
    // itself — that cycle would leak).
    std::vector<std::unique_ptr<sim::Rng>> streams;
    std::vector<std::unique_ptr<std::function<void()>>> arrivals;
    std::vector<std::unique_ptr<std::vector<int>>> targets;

    for (LinkFaultKind kind : kAllLinkKinds) {
        sim::Rng stream = root.fork();
        const LinkFaultClassConfig &cls = config_.classFor(kind);
        if (cls.mttf_hours <= 0.0)
            continue;
        Scope scope = scopeOf(kind);
        // For Edge scope these are drawable targets; for Fabric scope
        // they only decide eligibility (the event hits all of them).
        std::vector<int> pool = scope == Scope::Node
                                    ? eligibleNodes(kind, topo)
                                    : eligibleEdges(kind, topo);
        if (scope == Scope::Gpu ? gpus.empty() : pool.empty())
            continue; // nothing to strike on this topology
        double mttf_s = cls.mttf_hours * 3600.0;

        streams.push_back(std::make_unique<sim::Rng>(stream));
        sim::Rng *rng = streams.back().get();
        targets.push_back(std::make_unique<std::vector<int>>(pool));
        std::vector<int> *eligible = targets.back().get();
        arrivals.push_back(std::make_unique<std::function<void()>>());
        std::function<void()> *arrive = arrivals.back().get();
        int num_gpus = static_cast<int>(gpus.size());
        *arrive = [&trace, &simulation, rng, arrive, eligible, kind,
                   cls, mttf_s, num_gpus, scope, horizon]() {
            LinkFaultEvent ev;
            ev.kind = kind;
            ev.start_s = sim::toSeconds(simulation.now());
            ev.duration_s = exponential(*rng, cls.mean_duration_s);
            if (isDownKind(kind)) {
                ev.bandwidth_scale = 0.0;
            } else {
                ev.bandwidth_scale = std::clamp(
                    cls.mean_bandwidth_scale * rng->lognormalNoise(0.25),
                    0.05, 0.95);
            }
            switch (scope) {
              case Scope::Gpu:
                ev.gpu = static_cast<int>(rng->below(
                    static_cast<std::uint64_t>(num_gpus)));
                break;
              case Scope::Edge:
                ev.edge = (*eligible)[rng->below(
                    static_cast<std::uint64_t>(eligible->size()))];
                break;
              case Scope::Node:
                ev.node = (*eligible)[rng->below(
                    static_cast<std::uint64_t>(eligible->size()))];
                break;
              case Scope::Fabric:
                break; // hits every cross-rack link at once
            }
            trace.push_back(ev);

            sim::SimTime gap =
                sim::fromSeconds(exponential(*rng, mttf_s));
            if (simulation.now() + gap <= horizon)
                simulation.schedule(gap, *arrive);
        };
        sim::SimTime first = sim::fromSeconds(exponential(*rng, mttf_s));
        if (first <= horizon)
            simulation.scheduleAt(first, *arrive);
    }

    simulation.runUntil(horizon);
    std::stable_sort(trace.begin(), trace.end(),
                     [](const LinkFaultEvent &a, const LinkFaultEvent &b) {
                         return a.start_s < b.start_s;
                     });
    return trace;
}

double
applyLinkFaults(net::Topology &topo,
                const std::vector<LinkFaultEvent> &trace, double at_s)
{
    topo.resetLinkState();
    double slowest = 1.0;
    for (const LinkFaultEvent &ev : trace) {
        if (!ev.activeAt(at_s))
            continue;
        switch (ev.kind) {
          case LinkFaultKind::LinkDown:
          case LinkFaultKind::NicFlap:
            topo.setLinkDown(ev.edge, true);
            break;
          case LinkFaultKind::TorDown:
            // The switch dies: every link touching it goes with it.
            for (int e : topo.incidentEdges(ev.node))
                topo.setLinkDown(e, true);
            break;
          case LinkFaultKind::NvLinkLaneDegrade:
          case LinkFaultKind::PcieDowntrain:
            // Stacking degradations on one edge compound.
            topo.setLinkBandwidthScale(
                ev.edge, topo.linkBandwidthScale(ev.edge) *
                             ev.bandwidth_scale);
            break;
          case LinkFaultKind::SpineOversubscribed:
            // Pod-wide congestion; overlapping episodes compound.
            for (int e = 0; e < topo.edgeCount(); ++e) {
                if (topo.link(e).tier == net::FabricTier::CrossRack)
                    topo.setLinkBandwidthScale(
                        e, topo.linkBandwidthScale(e) *
                               ev.bandwidth_scale);
            }
            break;
          case LinkFaultKind::ThermalThrottle:
            slowest = std::min(slowest, ev.bandwidth_scale);
            break;
        }
    }
    return slowest;
}

std::string
describeLinkTrace(const std::vector<LinkFaultEvent> &trace,
                  const net::Topology &topo)
{
    std::ostringstream os;
    char line[192];
    std::snprintf(line, sizeof(line), "%10s  %-20s %10s %7s  %s\n",
                  "t (s)", "fault", "dur (s)", "scale", "target");
    os << line;
    for (const LinkFaultEvent &ev : trace) {
        std::string target;
        if (ev.edge >= 0) {
            auto [a, b] = topo.endpoints(ev.edge);
            target = topo.name(a) + " <-> " + topo.name(b);
        } else if (ev.node >= 0) {
            target = topo.name(ev.node) + " (all incident links)";
        } else if (ev.gpu >= 0) {
            target = "GPU" + std::to_string(ev.gpu);
        } else if (ev.kind == LinkFaultKind::SpineOversubscribed) {
            target = "all cross-rack links";
        }
        std::snprintf(line, sizeof(line),
                      "%10.1f  %-20s %10.1f %7.2f  %s\n", ev.start_s,
                      toString(ev.kind).c_str(), ev.duration_s,
                      ev.bandwidth_scale, target.c_str());
        os << line;
    }
    return os.str();
}

} // namespace mlps::fault
