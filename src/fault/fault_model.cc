#include "fault/fault_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>

#include "sim/event_queue.h"
#include "sim/logger.h"

namespace mlps::fault {

namespace {

constexpr FaultKind kAllKinds[kNumFaultKinds] = {
    FaultKind::GpuStall,      FaultKind::LinkFlap,
    FaultKind::HostHiccup,    FaultKind::EccRetryStorm,
    FaultKind::Preemption,    FaultKind::GpuLoss,
};

/** True for point events that end the run segment instead of slowing it. */
bool
isPointEvent(FaultKind kind)
{
    return kind == FaultKind::Preemption || kind == FaultKind::GpuLoss;
}

/** Exponential deviate with the given mean. */
double
exponential(sim::Rng &rng, double mean)
{
    double u = std::max(rng.uniform(), 1e-12);
    return -mean * std::log(u);
}

} // namespace

std::string
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::GpuStall: return "gpu-stall";
      case FaultKind::LinkFlap: return "link-flap";
      case FaultKind::HostHiccup: return "host-hiccup";
      case FaultKind::EccRetryStorm: return "ecc-retry-storm";
      case FaultKind::Preemption: return "preemption";
      case FaultKind::GpuLoss: return "gpu-loss";
    }
    sim::panic("toString: bad FaultKind %d", static_cast<int>(kind));
}

const FaultClassConfig &
FaultModelConfig::classFor(FaultKind kind) const
{
    return const_cast<FaultModelConfig *>(this)->classFor(kind);
}

FaultClassConfig &
FaultModelConfig::classFor(FaultKind kind)
{
    switch (kind) {
      case FaultKind::GpuStall: return gpu_stall;
      case FaultKind::LinkFlap: return link_flap;
      case FaultKind::HostHiccup: return host_hiccup;
      case FaultKind::EccRetryStorm: return ecc_retry_storm;
      case FaultKind::Preemption: return preemption;
      case FaultKind::GpuLoss: return gpu_loss;
    }
    sim::panic("classFor: bad FaultKind %d", static_cast<int>(kind));
}

FaultModelConfig
FaultModelConfig::datacenterProfile(double mttf_hours)
{
    if (mttf_hours <= 0.0)
        sim::fatal("datacenterProfile: MTTF %g hours must be positive",
                   mttf_hours);
    // Relative arrival weights: transient degradations dominate, hard
    // failures are rare (roughly the mix large-cluster studies report).
    // Weights sum to 1 so the aggregate arrival rate is 1/mttf_hours.
    FaultModelConfig cfg;
    cfg.gpu_stall = {mttf_hours / 0.35, 30.0, 0.55};
    cfg.host_hiccup = {mttf_hours / 0.25, 20.0, 0.50};
    cfg.ecc_retry_storm = {mttf_hours / 0.20, 60.0, 0.70};
    cfg.link_flap = {mttf_hours / 0.12, 45.0, 0.35};
    cfg.preemption = {mttf_hours / 0.06, 0.0, 0.0};
    cfg.gpu_loss = {mttf_hours / 0.02, 0.0, 0.0};
    return cfg;
}

bool
FaultModelConfig::allDisabled() const
{
    for (FaultKind kind : kAllKinds) {
        if (classFor(kind).mttf_hours > 0.0)
            return false;
    }
    return true;
}

double
FaultModelConfig::totalRatePerHour() const
{
    double rate = 0.0;
    for (FaultKind kind : kAllKinds) {
        const FaultClassConfig &c = classFor(kind);
        if (c.mttf_hours > 0.0)
            rate += 1.0 / c.mttf_hours;
    }
    return rate;
}

void
FaultModelConfig::validate() const
{
    for (FaultKind kind : kAllKinds) {
        const FaultClassConfig &c = classFor(kind);
        if (c.mttf_hours <= 0.0)
            continue; // disabled
        if (!isPointEvent(kind)) {
            if (c.mean_duration_s <= 0.0)
                sim::fatal("FaultModelConfig: %s needs a positive "
                           "mean duration (got %g s)",
                           toString(kind).c_str(), c.mean_duration_s);
            if (c.mean_severity <= 0.0 || c.mean_severity > 1.0)
                sim::fatal("FaultModelConfig: %s severity %g out of "
                           "(0, 1]",
                           toString(kind).c_str(), c.mean_severity);
        }
    }
}

FaultModel::FaultModel(const FaultModelConfig &config, std::uint64_t seed)
    : config_(config), seed_(seed)
{
    config_.validate();
}

std::vector<FaultEvent>
FaultModel::generate(double horizon_s, int num_gpus) const
{
    if (horizon_s < 0.0)
        sim::fatal("FaultModel: negative horizon %g s", horizon_s);
    if (num_gpus < 1)
        sim::fatal("FaultModel: need at least one GPU (got %d)",
                   num_gpus);

    std::vector<FaultEvent> trace;
    if (config_.allDisabled() || horizon_s == 0.0)
        return trace;

    // One decorrelated stream per fault class, forked in a fixed
    // order so a class's arrivals never depend on which other classes
    // are enabled.
    sim::Rng root(seed_);
    sim::Simulation simulation;
    const sim::SimTime horizon = sim::fromSeconds(horizon_s);

    // The self-rescheduling closures and their per-class streams live
    // in these pools for the duration of the run. A closure must not
    // own a shared_ptr to itself (that cycle never frees), so it
    // captures raw pointers into the pools instead.
    std::vector<std::unique_ptr<sim::Rng>> streams;
    std::vector<std::unique_ptr<std::function<void()>>> arrivals;

    for (FaultKind kind : kAllKinds) {
        sim::Rng stream = root.fork();
        const FaultClassConfig &cls = config_.classFor(kind);
        if (cls.mttf_hours <= 0.0)
            continue;
        double mttf_s = cls.mttf_hours * 3600.0;

        streams.push_back(std::make_unique<sim::Rng>(stream));
        sim::Rng *rng = streams.back().get();
        arrivals.push_back(std::make_unique<std::function<void()>>());
        std::function<void()> *arrive = arrivals.back().get();
        *arrive = [&trace, &simulation, rng, arrive, kind, cls, mttf_s,
                   num_gpus, horizon]() {
            FaultEvent ev;
            ev.kind = kind;
            ev.start_s = sim::toSeconds(simulation.now());
            if (isPointEvent(kind)) {
                ev.duration_s = 0.0;
                ev.severity = 0.0;
            } else {
                ev.duration_s = exponential(*rng, cls.mean_duration_s);
                // Severity jitters around the class mean, clamped to
                // a meaningful degradation range.
                ev.severity = std::clamp(
                    cls.mean_severity * rng->lognormalNoise(0.25),
                    0.05, 0.98);
            }
            bool gpu_scoped = kind == FaultKind::GpuStall ||
                              kind == FaultKind::EccRetryStorm ||
                              kind == FaultKind::GpuLoss;
            ev.resource =
                gpu_scoped
                    ? static_cast<int>(rng->below(
                          static_cast<std::uint64_t>(num_gpus)))
                    : -1;
            trace.push_back(ev);

            sim::SimTime gap = sim::fromSeconds(
                exponential(*rng, mttf_s));
            if (simulation.now() + gap <= horizon)
                simulation.schedule(gap, *arrive);
        };
        sim::SimTime first = sim::fromSeconds(exponential(*rng, mttf_s));
        if (first <= horizon)
            simulation.scheduleAt(first, *arrive);
    }

    simulation.runUntil(horizon);
    std::stable_sort(trace.begin(), trace.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.start_s < b.start_s;
                     });
    return trace;
}

std::string
describeTrace(const std::vector<FaultEvent> &trace)
{
    std::ostringstream os;
    char line[160];
    std::snprintf(line, sizeof(line), "%10s  %-15s %10s %9s %5s\n",
                  "t (s)", "fault", "dur (s)", "sev", "gpu");
    os << line;
    for (const FaultEvent &ev : trace) {
        std::snprintf(line, sizeof(line),
                      "%10.1f  %-15s %10.1f %9.2f %5d\n", ev.start_s,
                      toString(ev.kind).c_str(), ev.duration_s,
                      ev.severity, ev.resource);
        os << line;
    }
    return os.str();
}

} // namespace mlps::fault
