/**
 * @file
 * Umbrella header: the whole public API in one include.
 *
 * Fine-grained headers remain the preferred way to consume the
 * library from other libraries; this exists for applications,
 * notebooks-style experiments and quick tools.
 */

#ifndef MLPSIM_MLPS_H
#define MLPSIM_MLPS_H

// Simulation kernel
#include "sim/counters.h"
#include "sim/event_queue.h"
#include "sim/logger.h"
#include "sim/rng.h"
#include "sim/time.h"

// Hardware models
#include "hw/cpu.h"
#include "hw/gpu.h"
#include "hw/kernel_timing.h"
#include "hw/precision.h"

// Interconnect
#include "net/allreduce.h"
#include "net/link.h"
#include "net/topology.h"
#include "net/transfer.h"

// Machines
#include "sys/cluster.h"
#include "sys/machines.h"
#include "sys/system_config.h"

// Workloads
#include "wl/convergence.h"
#include "wl/dataset.h"
#include "wl/host_pipeline.h"
#include "wl/op.h"
#include "wl/op_graph.h"
#include "wl/workload.h"

// Model zoo
#include "models/builders.h"
#include "models/zoo.h"

// Training engine
#include "train/energy.h"
#include "train/multinode.h"
#include "train/pipeline.h"
#include "train/precision_policy.h"
#include "train/trainer.h"
#include "train/training_job.h"

// Measurement
#include "prof/csv.h"
#include "prof/device_monitor.h"
#include "prof/kernel_profiler.h"
#include "prof/metric_set.h"
#include "prof/sys_monitor.h"
#include "prof/trace.h"

// Analysis
#include "stats/cluster.h"
#include "stats/descriptive.h"
#include "stats/eigen.h"
#include "stats/matrix.h"
#include "stats/pca.h"
#include "stats/roofline.h"

// Scheduling
#include "sched/gantt.h"
#include "sched/job_spec.h"
#include "sched/naive.h"
#include "sched/online.h"
#include "sched/optimal.h"
#include "sched/schedule.h"

// Top-level API
#include "core/benchmark.h"
#include "core/characterize.h"
#include "core/registry.h"
#include "core/report.h"
#include "core/suite.h"

#endif // MLPSIM_MLPS_H
