/**
 * @file
 * Cost of the observability layer on the report hot path.
 *
 * Three google-benchmark cases generate the same single-section study
 * report: telemetry disabled (the default for every user who does not
 * pass --telemetry-dir), self-tracing enabled, and tracing + the
 * structured log mirror. The gate the CI relies on: the disabled path
 * must sit within 2% of a build that never had the obs layer, which
 * in practice means disarmed spans (one relaxed atomic load each)
 * must vanish into noise. Run with --benchmark_filter=Telemetry and
 * compare the disabled case against BM_StudyReportWarm history.
 *
 * The micro cases isolate the primitive costs: a disarmed span, an
 * armed span, and a registry snapshot.
 */

#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/report.h"
#include "exec/engine.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "sim/logger.h"

namespace {

using namespace mlps;

/** Scaling-only report against a warm cache: the telemetry-sensitive
 *  part (engine dedupe, cache lookups, rendering) without minutes of
 *  simulation per iteration. */
core::ReportOptions
scalingOnly()
{
    core::ReportOptions opts;
    opts.include_mixed_precision = false;
    opts.include_topology = false;
    opts.include_scheduling = false;
    opts.include_characterization = false;
    opts.include_faults = false;
    opts.include_degraded_fabric = false;
    return opts;
}

void
reportLoop(benchmark::State &state, bool tracing, bool structured)
{
    obs::SelfTracer &tracer = obs::SelfTracer::global();
    const std::string log_path =
        (std::filesystem::temp_directory_path() /
         "mlpsim_bench_telemetry.jsonl")
            .string();
    if (structured)
        sim::setStructuredLogFile(log_path);
    tracer.clear();
    tracer.setEnabled(tracing);

    core::ReportOptions opts = scalingOnly();
    exec::Engine engine(exec::ExecOptions{1});
    auto warmup = core::generateStudyReport(opts, engine);
    benchmark::DoNotOptimize(warmup.data());

    std::size_t iters = 0;
    for (auto _ : state) {
        if (tracing && ++iters % 256 == 0) {
            state.PauseTiming();
            tracer.clear(); // keep memory flat on long runs
            state.ResumeTiming();
        }
        auto text = core::generateStudyReport(opts, engine);
        benchmark::DoNotOptimize(text.data());
    }

    tracer.setEnabled(false);
    tracer.clear();
    if (structured) {
        sim::setStructuredLogFile("");
        std::filesystem::remove(log_path);
    }
}

void
BM_TelemetryOverhead_Disabled(benchmark::State &state)
{
    reportLoop(state, /*tracing=*/false, /*structured=*/false);
}
BENCHMARK(BM_TelemetryOverhead_Disabled)
    ->Unit(benchmark::kMillisecond);

void
BM_TelemetryOverhead_Tracing(benchmark::State &state)
{
    reportLoop(state, /*tracing=*/true, /*structured=*/false);
}
BENCHMARK(BM_TelemetryOverhead_Tracing)->Unit(benchmark::kMillisecond);

void
BM_TelemetryOverhead_Full(benchmark::State &state)
{
    reportLoop(state, /*tracing=*/true, /*structured=*/true);
}
BENCHMARK(BM_TelemetryOverhead_Full)->Unit(benchmark::kMillisecond);

void
BM_SpanDisarmed(benchmark::State &state)
{
    obs::SelfTracer::global().setEnabled(false);
    for (auto _ : state) {
        obs::Span span("bench", "noop");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_SpanDisarmed);

void
BM_SpanArmed(benchmark::State &state)
{
    obs::SelfTracer &tracer = obs::SelfTracer::global();
    tracer.clear();
    tracer.setEnabled(true);
    std::size_t iters = 0;
    for (auto _ : state) {
        if (++iters % (1u << 18) == 0) {
            state.PauseTiming();
            tracer.clear();
            state.ResumeTiming();
        }
        obs::Span span("bench", "recorded");
        benchmark::ClobberMemory();
    }
    tracer.setEnabled(false);
    tracer.clear();
}
BENCHMARK(BM_SpanArmed);

void
BM_RegistrySnapshot(benchmark::State &state)
{
    exec::Engine engine(exec::ExecOptions{1});
    obs::MetricRegistry &reg = obs::MetricRegistry::global();
    for (auto _ : state) {
        auto json = reg.toJson();
        benchmark::DoNotOptimize(json.data());
    }
}
BENCHMARK(BM_RegistrySnapshot);

} // namespace

BENCHMARK_MAIN();
