/**
 * @file
 * Cost of the attribution engine, and proof it is free when unused.
 *
 * Attribution is explicitly invoked (mlpsim explain, the report's
 * "Where the time goes" section, addAttribution lanes); the training
 * hot path never calls into obs/attrib. The CI gate relies on the
 * first pair of cases: BM_TrainRun_NoAttribution measures the plain
 * simulation, and must sit within 2% of pre-attribution history —
 * the only trainer change attribution made was routing the gradient
 * all-reduce through the shared train::gradientAllReduce helper,
 * which is the same arithmetic behind a function call. Compare with
 * --benchmark_filter=TrainRun across builds.
 *
 * The armed cases price what explain/report actually pay: one
 * attributeRun per point (re-running only the deterministic
 * all-reduce schedule) plus the JSON rendering.
 */

#include <benchmark/benchmark.h>

#include "core/suite.h"
#include "obs/attrib/attribution.h"
#include "sys/machines.h"
#include "train/training_job.h"

namespace {

using namespace mlps;

train::RunOptions
eightGpus()
{
    train::RunOptions opts;
    opts.num_gpus = 8;
    return opts;
}

/** The disabled path: simulation exactly as a non-explain user runs
 *  it. The 2% CI gate compares this against history. */
void
BM_TrainRun_NoAttribution(benchmark::State &state)
{
    core::Suite suite(sys::dss8440());
    for (auto _ : state) {
        train::TrainResult r = suite.run("MLPf_Res50_MX", eightGpus());
        benchmark::DoNotOptimize(&r);
    }
}
BENCHMARK(BM_TrainRun_NoAttribution)->Unit(benchmark::kMicrosecond);

/** The armed path: the same run plus its attribution. */
void
BM_TrainRun_WithAttribution(benchmark::State &state)
{
    core::Suite suite(sys::dss8440());
    const core::Benchmark *b = suite.registry().find("MLPf_Res50_MX");
    train::RunOptions opts = eightGpus();
    for (auto _ : state) {
        train::TrainResult r = suite.run("MLPf_Res50_MX", opts);
        obs::attrib::Attribution a = obs::attrib::attributeRun(
            suite.system(), b->spec(), opts, r);
        benchmark::DoNotOptimize(&a);
    }
}
BENCHMARK(BM_TrainRun_WithAttribution)->Unit(benchmark::kMicrosecond);

/** Attribution alone, single box: the marginal explain cost. */
void
BM_AttributeRun_Box(benchmark::State &state)
{
    core::Suite suite(sys::dss8440());
    const core::Benchmark *b = suite.registry().find("MLPf_Res50_MX");
    train::RunOptions opts = eightGpus();
    train::TrainResult r = suite.run("MLPf_Res50_MX", opts);
    for (auto _ : state) {
        obs::attrib::Attribution a = obs::attrib::attributeRun(
            suite.system(), b->spec(), opts, r);
        benchmark::DoNotOptimize(&a);
    }
}
BENCHMARK(BM_AttributeRun_Box)->Unit(benchmark::kMicrosecond);

/** Attribution alone at pod scale. The span graph stays O(tiers),
 *  but recovering the per-tier byte split re-runs the hierarchical
 *  all-reduce schedule over the full 512-GPU topology — the same
 *  cost the trainer itself pays for that point, paid once more. */
void
BM_AttributeRun_Pod512(benchmark::State &state)
{
    core::Suite suite(sys::withPod(sys::c4140M(), 16, 8));
    const core::Benchmark *b = suite.registry().find("MLPf_Res50_MX");
    train::RunOptions opts;
    opts.num_gpus = 512;
    train::TrainResult r = suite.run("MLPf_Res50_MX", opts);
    for (auto _ : state) {
        obs::attrib::Attribution a = obs::attrib::attributeRun(
            suite.system(), b->spec(), opts, r);
        benchmark::DoNotOptimize(&a);
    }
}
BENCHMARK(BM_AttributeRun_Pod512)->Unit(benchmark::kMicrosecond);

/** Rendering the stable mlpsim-attribution-v1 document. */
void
BM_AttributionToJson(benchmark::State &state)
{
    core::Suite suite(sys::withPod(sys::c4140M(), 16, 8));
    const core::Benchmark *b = suite.registry().find("MLPf_Res50_MX");
    train::RunOptions opts;
    opts.num_gpus = 512;
    train::TrainResult r = suite.run("MLPf_Res50_MX", opts);
    obs::attrib::Attribution a = obs::attrib::attributeRun(
        suite.system(), b->spec(), opts, r);
    for (auto _ : state) {
        std::string json = obs::attrib::toJson(a);
        benchmark::DoNotOptimize(json.data());
    }
}
BENCHMARK(BM_AttributionToJson)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
