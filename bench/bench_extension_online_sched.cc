/**
 * @file
 * Extension beyond the paper: online scheduling of an arriving job
 * stream. Section IV-D suggests cluster administrators should exploit
 * scaling diversity; this bench quantifies it for a Poisson stream of
 * MLPerf jobs on one DSS 8440 — FIFO-at-full-width (the naive policy
 * applied online) vs width-aware FIFO vs conservative backfilling.
 */

#include <cstdio>

#include "core/suite.h"
#include "sched/online.h"
#include "sys/machines.h"

int
main()
{
    using namespace mlps;

    sys::SystemConfig dss = sys::dss8440();
    core::Suite suite(dss);

    // Measure the catalogue's scaling profiles once.
    const std::vector<std::string> names = {
        "MLPf_SSD_Py", "MLPf_XFMR_Py", "MLPf_GNMT_Py", "MLPf_NCF_Py",
        "Dawn_Res18_Py",
    };
    std::vector<sched::JobSpec> catalogue;
    for (const auto &name : names) {
        sched::JobSpec j;
        j.name = name;
        for (int w = 1; w <= 8; w *= 2) {
            train::RunOptions opts;
            opts.num_gpus = w;
            j.seconds_at_width[w] = suite.run(name, opts).total_seconds;
        }
        catalogue.push_back(std::move(j));
    }

    std::printf("Online scheduling of a Poisson job stream "
                "(32 jobs, mean gap 20 min, %d GPUs)\n\n",
                dss.num_gpus);
    std::printf("%-18s %10s %12s %14s %10s %8s\n", "policy",
                "makespan", "avg wait", "avg turnaround", "max wait",
                "util");
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        auto jobs =
            sched::poissonJobStream(catalogue, 32, 1200.0, seed);
        std::printf("-- stream seed %llu --\n",
                    static_cast<unsigned long long>(seed));
        for (auto policy : {sched::OnlinePolicy::FifoFullWidth,
                            sched::OnlinePolicy::FifoBestWidth,
                            sched::OnlinePolicy::Backfill}) {
            auto m = sched::simulateOnline(jobs, dss.num_gpus, policy);
            std::printf("%-18s %8.2f h %10.2f h %12.2f h %8.2f h %7.1f%%\n",
                        sched::toString(policy).c_str(),
                        m.makespan_s / 3600.0, m.avg_wait_s / 3600.0,
                        m.avg_turnaround_s / 3600.0,
                        m.max_wait_s / 3600.0,
                        100.0 * m.utilization);
        }
    }
    std::printf("\nWidth-aware policies turn the Table IV scaling "
                "diversity into shorter queues without new hardware "
                "— the operational form of Figure 4's saving.\n");
    return 0;
}
