/**
 * @file
 * Reproduces Table V: system resource usage statistics on C4140 (K) —
 * CPU/GPU utilization, DRAM/HBM footprints and PCIe/NVLink bus
 * throughput, measured by the dstat/dmon-analog monitors while each
 * workload runs on 1, 2 and 4 GPUs.
 *
 * Paper trends to reproduce: CPU utilization roughly doubles with GPU
 * count; Res50_TF has the highest CPU use and NCF the lowest among
 * MLPerf; DRAM and HBM footprints grow with GPU count; NVLink traffic
 * grows super-linearly; Deep_Red_Cu and NCF push NVLink hardest;
 * DrQA pairs the highest CPU with the lowest GPU utilization.
 */

#include <cstdio>
#include <vector>

#include "models/zoo.h"
#include "prof/device_monitor.h"
#include "prof/sys_monitor.h"
#include "sys/machines.h"
#include "train/trainer.h"

namespace {

using namespace mlps;

void
reportRow(const train::Trainer &trainer, const wl::WorkloadSpec &spec,
          int num_gpus)
{
    train::RunOptions opts;
    opts.num_gpus = num_gpus;
    opts.precision = hw::Precision::Mixed;
    train::TrainResult r = trainer.run(spec, opts);

    // Sample the run with the dstat/dmon analogs, as the paper did.
    prof::SysMonitor dstat(/*seed=*/17 + num_gpus);
    prof::DeviceMonitor dmon(/*seed=*/29 + num_gpus);
    dstat.observe(r);
    dmon.observe(r);

    std::printf("%-15s %3d %8.2f %8.2f %10.0f %10.0f %9.0f %9.0f\n",
                spec.abbrev.c_str(), num_gpus, dstat.avgCpuUtil(),
                dmon.sumGpuUtil(), dstat.avgDramMb(), dmon.sumHbmMb(),
                dmon.sumPcieMbps(), dmon.sumNvlinkMbps());
}

} // namespace

int
main()
{
    sys::SystemConfig c4140k = sys::c4140K();
    train::Trainer trainer(c4140k);

    std::printf("Table V: System resource usage statistics on %s\n\n",
                c4140k.name.c_str());
    std::printf("%-15s %3s %8s %8s %10s %10s %9s %9s\n", "Workload",
                "#G", "CPU%", "GPU%", "DRAM(MB)", "HBM(MB)",
                "PCIe Mbps", "NVL Mbps");

    // MLPerf workloads at 1/2/4 GPUs.
    for (const auto &w : models::mlperfSuite()) {
        for (int n : {1, 2, 4})
            reportRow(trainer, w, n);
    }
    // DAWNBench entries: single-GPU (DrQA has no multi-GPU path) plus
    // the scalable ResNet-18 at 2 and 4.
    for (const auto &w : models::dawnBenchSuite()) {
        reportRow(trainer, w, 1);
        if (w.abbrev == "Dawn_Res18_Py") {
            reportRow(trainer, w, 2);
            reportRow(trainer, w, 4);
        }
    }
    // DeepBench: math kernels on one GPU, the all-reduce at 2 and 4.
    for (const auto &w : models::deepBenchSuite()) {
        if (w.mode == wl::RunMode::CollectiveLoop) {
            reportRow(trainer, w, 2);
            reportRow(trainer, w, 4);
        } else {
            reportRow(trainer, w, 1);
        }
    }
    return 0;
}
