/**
 * @file
 * Reproduces Table V: system resource usage statistics on C4140 (K) —
 * CPU/GPU utilization, DRAM/HBM footprints and PCIe/NVLink bus
 * throughput, measured by the dstat/dmon-analog monitors while each
 * workload runs on 1, 2 and 4 GPUs.
 *
 * Paper trends to reproduce: CPU utilization roughly doubles with GPU
 * count; Res50_TF has the highest CPU use and NCF the lowest among
 * MLPerf; DRAM and HBM footprints grow with GPU count; NVLink traffic
 * grows super-linearly; Deep_Red_Cu and NCF push NVLink hardest;
 * DrQA pairs the highest CPU with the lowest GPU utilization.
 */

#include <cstdio>
#include <vector>

#include "exec/engine.h"
#include "models/zoo.h"
#include "prof/device_monitor.h"
#include "prof/sys_monitor.h"
#include "sys/machines.h"

namespace {

using namespace mlps;

void
reportRow(const wl::WorkloadSpec &spec, int num_gpus,
          const train::TrainResult &r)
{
    // Sample the run with the dstat/dmon analogs, as the paper did.
    prof::SysMonitor dstat(/*seed=*/17 + num_gpus);
    prof::DeviceMonitor dmon(/*seed=*/29 + num_gpus);
    dstat.observe(r);
    dmon.observe(r);

    std::printf("%-15s %3d %8.2f %8.2f %10.0f %10.0f %9.0f %9.0f\n",
                spec.abbrev.c_str(), num_gpus, dstat.avgCpuUtil(),
                dmon.sumGpuUtil(), dstat.avgDramMb(), dmon.sumHbmMb(),
                dmon.sumPcieMbps(), dmon.sumNvlinkMbps());
}

} // namespace

int
main()
{
    sys::SystemConfig c4140k = sys::c4140K();

    // Declare the (workload, width) grid first, then evaluate it as
    // one batch through the engine.
    std::vector<std::pair<wl::WorkloadSpec, int>> points;
    // MLPerf workloads at 1/2/4 GPUs.
    for (const auto &w : models::mlperfSuite()) {
        for (int n : {1, 2, 4})
            points.emplace_back(w, n);
    }
    // DAWNBench entries: single-GPU (DrQA has no multi-GPU path) plus
    // the scalable ResNet-18 at 2 and 4.
    for (const auto &w : models::dawnBenchSuite()) {
        points.emplace_back(w, 1);
        if (w.abbrev == "Dawn_Res18_Py") {
            points.emplace_back(w, 2);
            points.emplace_back(w, 4);
        }
    }
    // DeepBench: math kernels on one GPU, the all-reduce at 2 and 4.
    for (const auto &w : models::deepBenchSuite()) {
        if (w.mode == wl::RunMode::CollectiveLoop) {
            points.emplace_back(w, 2);
            points.emplace_back(w, 4);
        } else {
            points.emplace_back(w, 1);
        }
    }

    exec::Engine engine;
    std::vector<exec::RunRequest> batch;
    for (const auto &p : points) {
        exec::RunRequest req;
        req.system = c4140k;
        req.workload = p.first;
        req.options.num_gpus = p.second;
        req.options.precision = hw::Precision::Mixed;
        batch.push_back(std::move(req));
    }
    auto results = engine.run(std::move(batch));

    std::printf("Table V: System resource usage statistics on %s\n\n",
                c4140k.name.c_str());
    std::printf("%-15s %3s %8s %8s %10s %10s %9s %9s\n", "Workload",
                "#G", "CPU%", "GPU%", "DRAM(MB)", "HBM(MB)",
                "PCIe Mbps", "NVL Mbps");
    for (std::size_t i = 0; i < points.size(); ++i)
        reportRow(points[i].first, points[i].second, results[i].train);
    return 0;
}
