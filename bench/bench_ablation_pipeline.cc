/**
 * @file
 * Ablation: the analytic steady-state iteration model (used by the
 * Trainer) against the discrete-event pipeline simulation — across
 * the MLPerf workloads, prefetch depths and stage-time jitter. Backs
 * DESIGN.md's "software-pipelined max of stages" assumption with an
 * executable check and shows where it breaks.
 */

#include <cstdio>

#include "models/zoo.h"
#include "sys/machines.h"
#include "train/pipeline.h"
#include "train/trainer.h"

int
main()
{
    using namespace mlps;

    sys::SystemConfig dss = sys::dss8440();
    train::Trainer trainer(dss);

    std::printf("Analytic vs discrete-event iteration time "
                "(%s, 4 GPUs, depth 2, no jitter)\n\n",
                dss.name.c_str());
    std::printf("%-15s %12s %12s %8s %12s %12s\n", "workload",
                "analytic ms", "DES ms", "error", "gpu stall s",
                "host block s");
    for (const auto &spec : models::mlperfSuite()) {
        train::RunOptions opts;
        opts.num_gpus = 4;
        auto r = trainer.run(spec, opts);

        train::PipelineStages st;
        st.host_s = r.iter.host_s;
        st.h2d_s = r.iter.h2d_s;
        st.gpu_s = r.iter.gpu_busy_s + r.iter.overhead_s;
        auto des = train::simulatePipeline(st, 400);
        std::printf("%-15s %12.2f %12.2f %7.2f%% %12.2f %12.2f\n",
                    spec.abbrev.c_str(), r.iter.iteration_s * 1e3,
                    des.steady_iteration_s * 1e3,
                    100.0 * (des.steady_iteration_s -
                             r.iter.iteration_s) /
                        r.iter.iteration_s,
                    des.gpu_stall_s, des.host_block_s);
    }

    // Where the assumption breaks: shallow prefetch and jitter.
    auto spec = *models::findWorkload("MLPf_Res50_TF");
    train::RunOptions opts;
    opts.num_gpus = 8;
    auto r = trainer.run(spec, opts);
    train::PipelineStages st;
    st.host_s = r.iter.host_s;
    st.h2d_s = r.iter.h2d_s;
    st.gpu_s = r.iter.gpu_busy_s + r.iter.overhead_s;

    std::printf("\nRes50_TF @8 GPUs (host-bound): prefetch depth "
                "sweep\n");
    for (int depth : {1, 2, 3, 4}) {
        train::PipelineStages s = st;
        s.prefetch_depth = depth;
        auto des = train::simulatePipeline(s, 400);
        std::printf("  depth %d: %7.2f ms (analytic %7.2f)\n", depth,
                    des.steady_iteration_s * 1e3,
                    train::analyticIteration(s) * 1e3);
    }

    std::printf("\nStage-time jitter sweep (lognormal sigma)\n");
    for (double sigma : {0.0, 0.1, 0.2, 0.4}) {
        train::PipelineStages s = st;
        s.jitter_sigma = sigma;
        auto des = train::simulatePipeline(s, 1000, 99);
        std::printf("  sigma %.1f: %7.2f ms (+%4.1f%% over "
                    "deterministic)\n", sigma,
                    des.steady_iteration_s * 1e3,
                    100.0 * (des.steady_iteration_s /
                                 train::analyticIteration(s) -
                             1.0));
    }
    return 0;
}
