/**
 * @file
 * Reproduces Table I: "Summary of key insights from the work" — as an
 * executable checklist. Every row of the paper's insight table is
 * re-derived from the model and marked HOLDS / FAILS, so a reader can
 * see at a glance whether the reproduction still tells the paper's
 * story (the same checks gate the test suite in paper_claims_test).
 */

#include <cstdio>
#include <map>

#include "core/characterize.h"
#include "core/suite.h"
#include "models/zoo.h"
#include "sched/naive.h"
#include "sched/optimal.h"
#include "stats/roofline.h"
#include "sys/machines.h"
#include "train/trainer.h"

namespace {

using namespace mlps;

int g_failures = 0;

void
check(bool ok, const char *insight, const char *evidence)
{
    std::printf("[%s] %s\n        %s\n", ok ? "HOLDS" : "FAILS",
                insight, evidence);
    g_failures += !ok;
}

} // namespace

int
main()
{
    std::printf("Table I: Summary of key insights — executable "
                "checklist\n\n");

    sys::SystemConfig c4140k = sys::c4140K();
    auto rep = core::characterize(c4140k, 1);
    sys::SystemConfig dss = sys::dss8440();
    core::Suite suite(dss);

    // Row 1-3: suite envelopes disjoint in the workload space.
    {
        double sep_deep = core::suiteSeparation(
            rep, 0, wl::SuiteTag::MLPerf, wl::SuiteTag::DeepBench);
        double sep_dawn = core::suiteSeparation(
            rep, 0, wl::SuiteTag::MLPerf, wl::SuiteTag::DawnBench);
        char ev[128];
        std::snprintf(ev, sizeof(ev),
                      "PC1 mean separation: vs DeepBench %.2f, vs "
                      "DAWNBench %.2f", sep_deep, sep_dawn);
        check(sep_deep > 1.5 && sep_dawn > 1.0,
              "MLPerf has a disjoint envelope from DAWNBench and "
              "DeepBench (Figure 1a)", ev);
    }

    // Row 4: scaling diversity enables smarter scheduling.
    {
        const std::vector<std::string> names = {
            "MLPf_Res50_TF", "MLPf_Res50_MX", "MLPf_SSD_Py",
            "MLPf_MRCNN_Py", "MLPf_XFMR_Py",  "MLPf_GNMT_Py",
            "MLPf_NCF_Py"};
        std::vector<sched::JobSpec> jobs;
        for (const auto &n : names) {
            sched::JobSpec j;
            j.name = n;
            for (int w = 1; w <= 8; w *= 2) {
                train::RunOptions o;
                o.num_gpus = w;
                j.seconds_at_width[w] = suite.run(n, o).total_seconds;
            }
            jobs.push_back(std::move(j));
        }
        double naive = sched::naiveSchedule(jobs, 4).makespan();
        double opt = sched::optimalSchedule(jobs, 4).makespan_s;
        char ev[128];
        std::snprintf(ev, sizeof(ev),
                      "optimal 4-GPU schedule saves %.1f h over naive "
                      "(paper: ~3.0 h)", (naive - opt) / 3600.0);
        check(naive - opt > 1.5 * 3600.0,
              "Exploiting scaling differences saves hours on "
              "multi-GPU systems (Table IV / Figure 4)", ev);
    }

    // Row 5: ML workloads sit near the slanted (memory) roof.
    {
        auto roof = stats::deviceRoofline(sys::t640().gpu,
                                          hw::Precision::Mixed, true);
        bool all_memory = true;
        for (const auto &pt : rep.roofline_points)
            all_memory &= pt.intensity < roof.ridgeIntensity();
        char ev[128];
        std::snprintf(ev, sizeof(ev),
                      "all 13 workloads left of the fp16+TC ridge "
                      "(%.0f FLOP/B)", roof.ridgeIntensity());
        check(all_memory,
              "Workload points sit near the slanted roofline — "
              "memory-bound (Figure 2)", ev);
    }

    // Row 6: mixed precision + tensor cores earn significant speedup.
    {
        auto sp = suite.mixedPrecisionStudy(
            {"MLPf_Res50_TF", "MLPf_MRCNN_Py"}, 8);
        char ev[128];
        std::snprintf(ev, sizeof(ev),
                      "speedups span %.2fx (MRCNN) to %.2fx (Res50_TF) "
                      "(paper: 1.5x-3.3x)", sp.at("MLPf_MRCNN_Py"),
                      sp.at("MLPf_Res50_TF"));
        check(sp.at("MLPf_Res50_TF") > 3.0 &&
                  sp.at("MLPf_MRCNN_Py") > 1.3 &&
                  sp.at("MLPf_MRCNN_Py") < 2.0,
              "Mixed precision with TensorCores earns significant "
              "speedup (Figure 3)", ev);
    }

    // Row 7: super-linear bus utilization growth with GPU count.
    {
        train::Trainer trainer(c4140k);
        auto spec = *models::findWorkload("MLPf_GNMT_Py");
        train::RunOptions o2, o4;
        o2.num_gpus = 2;
        o4.num_gpus = 4;
        double n2 = trainer.run(spec, o2).usage.nvlink_mbps;
        double n4 = trainer.run(spec, o4).usage.nvlink_mbps;
        char ev[128];
        std::snprintf(ev, sizeof(ev),
                      "GNMT NVLink traffic x%.1f from 2 to 4 GPUs",
                      n4 / n2);
        check(n4 > 2.0 * n2,
              "NVLink/PCIe utilization grows super-linearly with GPU "
              "count (Table V)", ev);
    }

    // Row 8: NVLink < PCIe-switch < CPU-PCIe training time.
    {
        auto time_on = [&](sys::SystemConfig machine) {
            train::Trainer t(machine);
            auto spec = *models::findWorkload("MLPf_XFMR_Py");
            train::RunOptions o;
            o.num_gpus = 4;
            return t.run(spec, o).total_seconds;
        };
        double nv = time_on(sys::c4140M());
        double sw = time_on(sys::c4140B());
        double cp = time_on(sys::t640());
        char ev[128];
        std::snprintf(ev, sizeof(ev),
                      "XFMR 4-GPU minutes: NVLink %.0f < switch %.0f "
                      "< CPU-PCIe %.0f", nv / 60, sw / 60, cp / 60);
        check(nv < sw && sw < cp,
              "Training time: NVLink system < PCIe-switch system < "
              "CPU-PCIe system (Figure 5 / Table III)", ev);
    }

    // Row 9 (Section V-A): CPU load scales with GPU count.
    {
        train::Trainer trainer(c4140k);
        auto spec = *models::findWorkload("MLPf_Res50_TF");
        train::RunOptions o1, o4;
        o1.num_gpus = 1;
        o4.num_gpus = 4;
        double c1 = trainer.run(spec, o1).usage.cpu_util_pct;
        double c4 = trainer.run(spec, o4).usage.cpu_util_pct;
        char ev[128];
        std::snprintf(ev, sizeof(ev),
                      "Res50_TF host CPU: %.1f%% at 1 GPU, %.1f%% at "
                      "4 GPUs", c1, c4);
        check(c4 > 2.5 * c1,
              "Host CPU utilization rises with the number of GPUs "
              "(Table V)", ev);
    }

    std::printf("\n%d of 7 insights hold.\n", 7 - g_failures);
    return g_failures == 0 ? 0 : 1;
}
