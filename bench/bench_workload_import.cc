/**
 * @file
 * Importer throughput: parse+validate MB/s over the largest built-in
 * export, accept and reject paths, pretty and compact forms.
 *
 * CI runs this as a gate: hardened parsing is allowed to cost, but
 * not to collapse — the bench exits non-zero when the accept path
 * drops under a floor far below any measured machine, so a quadratic
 * regression in validation (the classic hardening bug) fails the
 * pipeline instead of landing.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/registry.h"
#include "wl/import/exporter.h"
#include "wl/import/importer.h"

namespace {

using namespace mlps;
using clock_type = std::chrono::steady_clock;

/** Accept-path floor, MB/s; conservative by ~2 orders of magnitude. */
constexpr double kMinAcceptMBps = 2.0;

struct Sample {
    const char *label;
    double mbps = 0.0;
    int iterations = 0;
};

Sample
timeImports(const char *label, const std::string &doc, bool expect_ok,
            int iterations)
{
    auto t0 = clock_type::now();
    for (int i = 0; i < iterations; ++i) {
        wl::import::ImportResult res = wl::import::importWorkload(doc);
        if (res.ok != expect_ok) {
            std::fprintf(stderr, "%s: unexpected %s\n", label,
                         res.ok ? "accept" : "reject");
            std::exit(1);
        }
    }
    double s = std::chrono::duration<double>(clock_type::now() - t0)
                   .count();
    Sample out;
    out.label = label;
    out.iterations = iterations;
    out.mbps = s > 0.0
                   ? doc.size() * iterations / s / 1e6
                   : 0.0;
    return out;
}

} // namespace

int
main()
{
    core::Registry reg;
    // The largest export stresses the per-op loop; the matching
    // compact form isolates whitespace handling.
    std::string biggest;
    std::string biggest_name;
    for (const core::Benchmark &b : reg.all()) {
        std::string text = wl::import::exportWorkload(b.spec());
        if (text.size() > biggest.size()) {
            biggest = std::move(text);
            biggest_name = b.abbrev();
        }
    }
    std::string compact;
    if (const core::Benchmark *b = reg.find(biggest_name))
        compact = wl::import::exportWorkloadLine(b->spec());

    // Reject paths: a syntax error found early, and a semantic pass
    // that walks the whole document before failing.
    std::string truncated = biggest.substr(0, biggest.size() / 2);
    std::string semantic = biggest;
    std::size_t at = semantic.find("\"dataset\"");
    if (at == std::string::npos) {
        std::fprintf(stderr, "export of %s lacks a dataset stanza\n",
                     biggest_name.c_str());
        return 1;
    }
    semantic.replace(at, 9, "\"datasex\"");

    std::printf("workload import throughput (%s, %zu bytes)\n\n",
                biggest_name.c_str(), biggest.size());
    std::printf("%-22s %10s %12s\n", "path", "iters", "MB/s");

    std::vector<Sample> samples;
    samples.push_back(
        timeImports("accept/pretty", biggest, true, 200));
    samples.push_back(
        timeImports("accept/compact", compact, true, 200));
    samples.push_back(
        timeImports("reject/syntax", truncated, false, 200));
    samples.push_back(
        timeImports("reject/semantic", semantic, false, 200));
    for (const Sample &s : samples)
        std::printf("%-22s %10d %12.1f\n", s.label, s.iterations,
                    s.mbps);

    if (samples[0].mbps < kMinAcceptMBps) {
        std::fprintf(stderr,
                     "\nFAIL: accept path %.2f MB/s under the %.1f "
                     "MB/s floor\n",
                     samples[0].mbps, kMinAcceptMBps);
        return 1;
    }
    std::printf("\nPASS: accept path clears the %.1f MB/s floor\n",
                kMinAcceptMBps);
    return 0;
}
