/**
 * @file
 * Extension beyond the paper: energy to train. MLPerf's metric is
 * time-to-quality; this bench reads the same runs through a power
 * model — showing that mixed precision's 1.5x-3.3x time savings are
 * also energy savings, that NVLink systems train cheaper, and that
 * over-scaling a poorly-scaling workload (NCF) wastes energy even
 * when it trims a little time.
 */

#include <cstdio>

#include "models/zoo.h"
#include "sys/machines.h"
#include "train/energy.h"
#include "train/trainer.h"

int
main()
{
    using namespace mlps;

    sys::SystemConfig dss = sys::dss8440();
    train::Trainer trainer(dss);

    std::printf("Energy to train (8 GPUs, %s)\n\n", dss.name.c_str());
    std::printf("%-15s %12s %12s %12s %10s\n", "workload",
                "fp32 kWh", "mixed kWh", "saved", "avg W");
    for (const auto &spec : models::mlperfSuite()) {
        train::RunOptions opts;
        opts.num_gpus = 8;
        opts.precision = hw::Precision::FP32;
        auto r32 = trainer.run(spec, opts);
        opts.precision = hw::Precision::Mixed;
        auto rmx = trainer.run(spec, opts);
        auto e32 = train::estimateEnergy(dss, r32);
        auto emx = train::estimateEnergy(dss, rmx);
        std::printf("%-15s %12.2f %12.2f %11.0f%% %10.0f\n",
                    spec.abbrev.c_str(), e32.totalKwh(),
                    emx.totalKwh(),
                    100.0 * (1.0 - emx.totalKwh() / e32.totalKwh()),
                    emx.avg_watts);
    }

    std::printf("\nEnergy vs GPU count (mixed precision):\n");
    std::printf("%-15s", "workload");
    for (int n : {1, 2, 4, 8})
        std::printf("  %6d GPU", n);
    std::printf("   [kWh]\n");
    for (const char *name : {"MLPf_Res50_MX", "MLPf_NCF_Py"}) {
        auto spec = *models::findWorkload(name);
        std::printf("%-15s", name);
        for (int n : {1, 2, 4, 8}) {
            train::RunOptions opts;
            opts.num_gpus = n;
            train::PowerModelParams params;
            params.charge_idle_gpus = false; // marginal energy view
            auto e = train::estimateEnergy(
                dss, trainer.run(spec, opts), params);
            std::printf("  %10.2f", e.totalKwh());
        }
        std::printf("\n");
    }

    std::printf("\nTopology view (4 GPUs, Transformer, mixed):\n");
    auto spec = *models::findWorkload("MLPf_XFMR_Py");
    for (const auto &machine : sys::figure5Systems()) {
        train::Trainer t(machine);
        train::RunOptions opts;
        opts.num_gpus = 4;
        auto r = t.run(spec, opts);
        auto e = train::estimateEnergy(machine, r);
        std::printf("  %-11s %7.2f kWh  (%6.1f min @ %4.0f W)\n",
                    machine.name.c_str(), e.totalKwh(),
                    r.totalMinutes(), e.avg_watts);
    }
    return 0;
}
