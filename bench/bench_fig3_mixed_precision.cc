/**
 * @file
 * Reproduces Figure 3: speedup of mixed-precision training (tensor
 * cores) over single precision for the MLPerf workloads on the
 * DSS 8440 with 8 GPUs.
 *
 * Paper values: speedups span 1.5x (MRCNN_Py) to 3.3x (Res50_TF);
 * NCF_Py's times are in seconds rather than minutes.
 */

#include <cstdio>

#include "core/suite.h"
#include "exec/engine.h"
#include "sys/machines.h"

int
main()
{
    using namespace mlps;

    sys::SystemConfig dss = sys::dss8440();
    core::Suite suite(dss);
    const int gpus = 8;

    const std::vector<std::string> workloads = {
        "MLPf_Res50_TF", "MLPf_Res50_MX", "MLPf_SSD_Py",
        "MLPf_MRCNN_Py", "MLPf_XFMR_Py",  "MLPf_GNMT_Py",
        "MLPf_NCF_Py",
    };

    // One declarative batch over the workload x precision grid.
    exec::Engine engine;
    std::vector<exec::RunRequest> batch;
    for (const auto &w : workloads) {
        train::RunOptions opts;
        opts.num_gpus = gpus;
        opts.precision = hw::Precision::FP32;
        batch.push_back(suite.request(w, opts));
        opts.precision = hw::Precision::Mixed;
        batch.push_back(suite.request(w, opts));
    }
    auto results = engine.run(std::move(batch));

    std::printf("Figure 3: Mixed precision training speedup over "
                "single precision (%s, %d GPUs)\n\n", dss.name.c_str(),
                gpus);
    std::printf("%-15s %14s %14s %9s\n", "Workload", "fp32", "mixed",
                "speedup");
    std::size_t i = 0;
    for (const auto &w : workloads) {
        double fp32 = results[i++].train.total_seconds;
        double mixed = results[i++].train.total_seconds;

        bool seconds = w == "MLPf_NCF_Py"; // as noted in the paper
        std::printf("%-15s %11.1f %s %11.1f %s %8.2fx\n", w.c_str(),
                    seconds ? fp32 : fp32 / 60.0,
                    seconds ? "s  " : "min",
                    seconds ? mixed : mixed / 60.0,
                    seconds ? "s  " : "min", fp32 / mixed);
    }
    std::printf("\n(Paper: range 1.5x MRCNN_Py to 3.3x Res50_TF.)\n");
    return 0;
}
