/**
 * @file
 * Extension beyond the paper: multi-node scaling. The paper confined
 * itself to one machine (and dropped DeepBench's MPI all-reduce);
 * this bench carries the Section IV-D scaling question across a
 * cluster of DSS 8440 nodes and across NIC fabrics — showing which
 * workloads keep scaling past a chassis and how much the network
 * tier matters.
 */

#include <cstdio>

#include "models/zoo.h"
#include "sys/cluster.h"
#include "train/multinode.h"

int
main()
{
    using namespace mlps;

    const std::vector<std::string> workloads = {
        "MLPf_Res50_TF", "MLPf_XFMR_Py", "MLPf_NCF_Py",
    };
    const int node_counts[] = {1, 2, 4, 8};

    sys::ClusterConfig cluster =
        sys::dss8440Cluster(8, sys::infinibandEdr());
    std::printf("Multi-node scaling on %s (8 GPUs/node)\n\n",
                cluster.name.c_str());
    std::printf("%-15s %10s", "workload", "1 node");
    for (int n : {2, 4, 8})
        std::printf(" %9d-node", n);
    std::printf("   (speedup over 1 node)\n");

    for (const auto &name : workloads) {
        auto spec = *models::findWorkload(name);
        std::printf("%-15s", name.c_str());
        double base = 0.0;
        std::string speedups;
        for (int n : node_counts) {
            auto r = train::runMultiNode(cluster, spec, n);
            if (n == 1)
                base = r.total_seconds;
            std::printf(" %8.1f min", r.totalMinutes());
            if (n > 1) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), " %.2fx",
                              base / r.total_seconds);
                speedups += buf;
            }
        }
        std::printf("  %s\n", speedups.c_str());
    }

    std::printf("\nNIC fabric sensitivity (4 nodes, Transformer):\n");
    auto spec = *models::findWorkload("MLPf_XFMR_Py");
    for (const auto &nic : {sys::ethernet25(), sys::ethernet100(),
                            sys::infinibandEdr()}) {
        sys::ClusterConfig c = sys::dss8440Cluster(4, nic);
        auto r = train::runMultiNode(c, spec, 4);
        std::printf("  %-8s %8.1f min  (inter-node collective "
                    "%5.1f ms/iter)\n", nic.name.c_str(),
                    r.totalMinutes(), r.inter_comm_s * 1e3);
    }

    std::printf("\nTakeaway: the scaling diversity of Table IV "
                "amplifies across nodes — NCF gains nothing past one "
                "chassis while ResNet-50 keeps scaling on a fast "
                "fabric.\n");
    return 0;
}
