/**
 * @file
 * Service-tier latency: time from request submission to response
 * emission through ServeCore (admission queue + dedupe + engine +
 * result encoding), cold and warm, at 1/4/16 concurrent clients.
 *
 * The bench drives the transport-free core directly, so the numbers
 * isolate the serve pipeline from socket noise: what a client pays
 * when the cache is cold (full simulation), and what the same
 * request costs once the answer is resident. The WRR dispatcher
 * interleaves clients, so per-request latency at 16 clients also
 * shows queue wait under fan-in.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using namespace mlps;
using clock_type = std::chrono::steady_clock;

double
msSince(clock_type::time_point t0, clock_type::time_point t1)
{
    return std::chrono::duration<double, std::milli>(t1 - t0)
        .count();
}

/** Pool of distinct request lines: workloads x GPU counts. */
std::vector<std::string>
requestPool()
{
    std::vector<std::string> pool;
    for (const char *wl :
         {"MLPf_NCF_Py", "MLPf_Res50_MX", "MLPf_GNMT_Py"})
        for (int gpus : {1, 2, 4, 8})
            pool.push_back(std::string("{\"type\":\"run\","
                                       "\"workload\":\"") +
                           wl + "\",\"gpus\":" +
                           std::to_string(gpus) + "}");
    return pool;
}

struct Percentiles {
    double mean = 0, p50 = 0, p95 = 0, p99 = 0, max = 0;
};

Percentiles
summarize(std::vector<double> ms)
{
    Percentiles p;
    if (ms.empty())
        return p;
    std::sort(ms.begin(), ms.end());
    for (double v : ms)
        p.mean += v;
    p.mean /= static_cast<double>(ms.size());
    p.p50 = ms[ms.size() / 2];
    p.p95 = ms[std::min(ms.size() - 1, (ms.size() * 95) / 100)];
    p.p99 = ms[std::min(ms.size() - 1, (ms.size() * 99) / 100)];
    p.max = ms.back();
    return p;
}

/** The server's own view: the latency_ms block of statsJson() —
 *  the same numbers a `stats` request returns over the wire. */
std::string
serverLatencyBlock(const serve::ServeCore &core)
{
    std::string stats = core.statsJson();
    std::size_t at = stats.find("\"latency_ms\":");
    if (at == std::string::npos)
        return "{}";
    std::size_t open = stats.find('{', at);
    std::size_t close = stats.find('}', open);
    if (open == std::string::npos || close == std::string::npos)
        return "{}";
    return stats.substr(open, close - open + 1);
}

// Wave-scoped latency bookkeeping shared with the emit sink: the
// sink is bound once at core construction, so it reads the submit
// timestamps of whichever wave is currently in flight.
std::map<std::string, clock_type::time_point> *g_submitted = nullptr;
std::vector<double> *g_latency = nullptr;

/** One submission wave: every client sends its share, then the
 *  dispatcher drains. Returns per-request submit-to-emit latency. */
std::vector<double>
wave(serve::ServeCore &core, int clients,
     const std::vector<std::string> &pool, int requests,
     const std::string &tag)
{
    std::map<std::string, clock_type::time_point> submitted;
    std::vector<double> latency;
    g_submitted = &submitted;
    g_latency = &latency;

    for (int i = 0; i < requests; ++i) {
        std::string id = tag + std::to_string(i);
        std::string line = pool[static_cast<std::size_t>(i) %
                                pool.size()];
        line.insert(1, "\"id\":\"" + id + "\",");
        std::string client =
            "c" + std::to_string(i % clients);
        submitted[id] = clock_type::now();
        core.handleLine(client, line, 0.0);
    }
    while (core.hasPending())
        core.dispatchBatch();
    g_submitted = nullptr; // the locals die with this frame
    g_latency = nullptr;
    return latency;
}

} // namespace

int
main()
{
    using namespace mlps;

    std::setvbuf(stdout, nullptr, _IONBF, 0);
    std::printf("Serve-tier latency, submit -> response emit "
                "(transport-free ServeCore)\n"
                "12 distinct points, 48 requests/wave, warm wave "
                "repeats the cold wave\n\n");
    std::printf("%8s %-6s %9s %7s %6s %9s %9s %9s %9s %9s\n",
                "clients", "phase", "requests", "unique", "hits",
                "mean(ms)", "p50(ms)", "p95(ms)", "p99(ms)",
                "max(ms)");

    const auto pool = requestPool();
    constexpr int kRequests = 48;

    for (int clients : {1, 4, 16}) {
        serve::ServeConfig cfg;
        cfg.exec = exec::ExecOptions(2);
        cfg.admission.rate = 1e6;
        cfg.admission.burst = 1e6;

        serve::ServeCore core(
            cfg, [](const std::string &, const std::string &line) {
                if (!g_submitted) // hello lines precede the waves
                    return;
                serve::Response resp;
                std::string err;
                if (!serve::decodeResponse(line, &resp, &err))
                    return;
                auto it = g_submitted->find(resp.id);
                if (it != g_submitted->end())
                    g_latency->push_back(
                        msSince(it->second, clock_type::now()));
            });
        for (int c = 0; c < clients; ++c)
            core.clientConnected("c" + std::to_string(c));

        auto before = core.engine().stats();
        auto cold = wave(core, clients, pool, kRequests, "k");
        auto mid = core.engine().stats();
        auto warm = wave(core, clients, pool, kRequests, "w");
        auto after = core.engine().stats();

        Percentiles pc = summarize(cold);
        std::printf("%8d %-6s %9d %7llu %6llu %9.3f %9.3f %9.3f "
                    "%9.3f %9.3f\n",
                    clients, "cold", kRequests,
                    static_cast<unsigned long long>(
                        mid.unique_runs - before.unique_runs),
                    static_cast<unsigned long long>(
                        mid.cache_hits - before.cache_hits),
                    pc.mean, pc.p50, pc.p95, pc.p99, pc.max);
        Percentiles pw = summarize(warm);
        std::printf("%8d %-6s %9d %7llu %6llu %9.3f %9.3f %9.3f "
                    "%9.3f %9.3f\n",
                    clients, "warm", kRequests,
                    static_cast<unsigned long long>(
                        after.unique_runs - mid.unique_runs),
                    static_cast<unsigned long long>(
                        after.cache_hits - mid.cache_hits),
                    pw.mean, pw.p50, pw.p95, pw.p99, pw.max);
        std::printf("%8d %-6s dispatch-to-emit sampler %s\n",
                    clients, "server", serverLatencyBlock(core).c_str());
    }

    std::printf("\nWarm waves resolve from the in-memory cache: the "
                "residual latency is\nadmission + JSON round trip, "
                "which bounds the service overhead per hit.\n");
    return 0;
}
