/**
 * @file
 * Reproduces Table III: hardware specifications and interconnect
 * topologies of the six experimental platforms, plus the fabric each
 * GPU-set size would use for collectives (the property behind
 * Figure 5).
 */

#include <cstdio>

#include "sys/machines.h"

int
main()
{
    std::printf("Table III: Hardware specifications of systems for "
                "experimentation\n\n");
    for (const auto &s : mlps::sys::allMachines()) {
        std::printf("%s", s.describe().c_str());
        std::printf("  Collective fabric by GPU count:");
        for (int n = 2; n <= s.num_gpus; n *= 2) {
            std::printf("  %d-GPU: %s", n,
                        mlps::net::toString(s.fabricFor(n)).c_str());
        }
        std::printf("\n  GPUDirect P2P (GPU0, GPU%d): %s\n\n",
                    s.num_gpus - 1,
                    s.topo.canPeerToPeer(s.gpu_nodes[0],
                                         s.gpu_nodes[s.num_gpus - 1])
                        ? "yes"
                        : "no");
    }
    std::printf("Reference machine:\n%s\n",
                mlps::sys::mlperfReference().describe().c_str());
    return 0;
}
