/**
 * @file
 * Extension beyond the paper: fault-tolerant training. The paper's
 * time-to-train numbers assume nothing ever breaks; at datacenter
 * scale something always does. This bench sweeps the machine MTTF and
 * reports the expected time-to-train under a datacenter fault profile
 * with Young-Daly-optimal checkpointing, then compares elastic
 * recovery policies for a job stream on a machine losing GPUs.
 */

#include <cmath>
#include <cstdio>

#include "core/suite.h"
#include "fault/fault_model.h"
#include "sched/online.h"
#include "sys/machines.h"
#include "train/checkpoint.h"

int
main()
{
    using namespace mlps;

    sys::SystemConfig dss = sys::dss8440();
    core::Suite suite(dss);
    constexpr std::uint64_t kSeed = 42;

    // Part 1: expected time-to-train vs machine MTTF.
    std::printf("Fault-aware time-to-train on %s, 8 GPUs, seed %llu\n"
                "(datacenter fault mix, Young-Daly-optimal "
                "checkpoints)\n\n",
                dss.name.c_str(),
                static_cast<unsigned long long>(kSeed));
    std::printf("%-14s %9s %10s %10s %9s %9s %10s %10s\n", "workload",
                "MTTF(h)", "base(min)", "exp(min)", "goodput", "avail",
                "lost(min)", "ckpt(min)");
    train::RunOptions opts;
    opts.num_gpus = 8;
    for (const char *name : {"MLPf_Res50_MX", "MLPf_GNMT_Py"}) {
        auto base = suite.run(name, opts);
        auto ckpt = train::checkpointModelFor(
            dss, suite.registry().find(name)->spec());
        for (double mttf : {2.0, 6.0, 24.0, 168.0, 1000.0}) {
            fault::FaultModel model(
                fault::FaultModelConfig::datacenterProfile(mttf),
                kSeed);
            auto ft = train::applyFaultTrace(base, ckpt, model);
            std::printf(
                "%-14s %9.0f %10.1f %10.1f %9.3f %9.3f %10.1f %10.1f\n",
                name, mttf, base.totalMinutes(),
                ft.expected_seconds / 60.0, ft.goodput(),
                ft.availability(), ft.lost_work_s / 60.0,
                std::isinf(ft.checkpoint_interval_s)
                    ? 0.0
                    : ft.checkpoint_interval_s / 60.0);
        }
    }

    // Part 2: elastic recovery policies under GPU outages.
    std::printf("\nElastic recovery of a job stream (16 jobs, 8 GPUs, "
                "MTTF 1 h)\n\n");
    std::vector<sched::JobSpec> catalogue;
    for (const char *name :
         {"MLPf_SSD_Py", "MLPf_GNMT_Py", "MLPf_NCF_Py"}) {
        sched::JobSpec j;
        j.name = name;
        for (int w = 1; w <= 8; w *= 2) {
            train::RunOptions o;
            o.num_gpus = w;
            j.seconds_at_width[w] = suite.run(name, o).total_seconds;
        }
        catalogue.push_back(std::move(j));
    }
    auto jobs = sched::poissonJobStream(catalogue, 16, 1800.0, kSeed);
    fault::FaultModel machine_faults(
        fault::FaultModelConfig::datacenterProfile(1.0), kSeed);
    auto trace = machine_faults.generate(24.0 * 3600.0, 8);
    auto outages = sched::outagesFromTrace(trace);
    std::printf("%zu faults lowered to %zu schedulable outages\n\n",
                trace.size(), outages.size());
    std::printf("%-10s %10s %12s %11s %9s %9s %6s\n", "recovery",
                "makespan", "lost work", "restarts", "goodput",
                "avail", "intr");
    for (auto rec : {sched::RecoveryPolicy::Requeue,
                     sched::RecoveryPolicy::Shrink,
                     sched::RecoveryPolicy::Migrate}) {
        auto m = sched::simulateElastic(
            jobs, 8, sched::OnlinePolicy::FifoBestWidth, outages, rec);
        std::printf(
            "%-10s %8.2f h %8.2f GPUh %7.2f GPUh %9.3f %9.3f %6d\n",
            sched::toString(rec).c_str(), m.online.makespan_s / 3600.0,
            m.lost_work_s / 3600.0, m.restart_s / 3600.0, m.goodput,
            m.availability, m.interruptions);
    }
    return 0;
}
