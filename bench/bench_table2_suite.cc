/**
 * @file
 * Reproduces Table II: the benchmark population of the study —
 * MLPerf v0.5 (top), DAWNBench (middle) and DeepBench (bottom), with
 * domain, model, framework, submitter, dataset and quality target,
 * plus the modeled per-sample statistics of each workload.
 */

#include <cstdio>

#include "core/registry.h"

namespace {

void
printSuite(const mlps::core::Registry &reg, mlps::wl::SuiteTag tag)
{
    std::printf("--- %s ---\n", mlps::wl::toString(tag).c_str());
    std::printf("%-15s %-32s %-30s %-11s %-12s %-22s %s\n",
                "Abbreviation", "Domain", "Model", "Framework",
                "Submitter", "Dataset", "Quality Target");
    for (const auto *b : reg.bySuite(tag))
        std::printf("%s\n", b->tableRow().c_str());
    std::printf("\nModel statistics:\n");
    for (const auto *b : reg.bySuite(tag))
        std::printf("%s\n", b->statsRow().c_str());
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Table II: Summary of benchmarks in MLPerf (top), "
                "DAWNBench (middle), and DeepBench (bottom)\n\n");
    mlps::core::Registry reg;
    printSuite(reg, mlps::wl::SuiteTag::MLPerf);
    printSuite(reg, mlps::wl::SuiteTag::DawnBench);
    printSuite(reg, mlps::wl::SuiteTag::DeepBench);
    std::printf("(Reinforcement Learning is excluded: MLPerf v0.5 had "
                "no GPU submission for it, as in the paper.)\n");
    return 0;
}
