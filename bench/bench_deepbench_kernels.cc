/**
 * @file
 * DeepBench-style per-kernel report: every GEMM / convolution / RNN
 * configuration of the modeled deepbench workloads timed individually
 * on the V100 at fp32 and mixed precision — the raw data behind the
 * Deep_* aggregate rows of the paper's analysis.
 */

#include <cstdio>

#include "hw/kernel_timing.h"
#include "models/deepbench.h"
#include "sys/machines.h"

namespace {

using namespace mlps;

void
reportWorkload(const hw::GpuSpec &gpu, const wl::WorkloadSpec &spec)
{
    std::printf("--- %s ---\n", spec.abbrev.c_str());
    std::printf("%-14s %10s %10s %10s %10s %9s\n", "kernel",
                "GFLOP", "fp32 ms", "fp32 TF/s", "mixed ms",
                "speedup");
    for (const auto &op : spec.graph.ops()) {
        auto fwd = op.forwardProfile(1.0);
        double t32 = hw::timeKernel(gpu, fwd,
                                    hw::Precision::FP32).total();
        double tmx = hw::timeKernel(gpu, fwd,
                                    hw::Precision::Mixed).total();
        std::printf("%-14s %10.2f %10.3f %10.1f %10.3f %8.2fx\n",
                    op.name.c_str(), fwd.flops / 1e9, t32 * 1e3,
                    fwd.flops / t32 / 1e12, tmx * 1e3, t32 / tmx);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    hw::GpuSpec gpu = hw::teslaV100Sxm2_16();
    std::printf("DeepBench kernel report on %s\n\n", gpu.name.c_str());
    reportWorkload(gpu, models::deepbenchGemm());
    reportWorkload(gpu, models::deepbenchConv());
    reportWorkload(gpu, models::deepbenchRnn());
    return 0;
}
