/**
 * @file
 * Extension: the submission machines. NVIDIA's MLPerf v0.5 entries
 * ran on the DGX-1V (hybrid cube-mesh NVLink); this bench compares
 * 8-GPU scaling on the paper's DSS 8440 (PCIe switches) against the
 * DGX-1V and the NVSwitch DGX-2 — quantifying how much of Table IV's
 * sub-linearity is fabric rather than algorithm, and extending the
 * sweep to 16 GPUs.
 */

#include <cstdio>

#include "models/zoo.h"
#include "net/allreduce.h"
#include "sys/machines.h"
#include "train/trainer.h"

int
main()
{
    using namespace mlps;

    std::vector<sys::SystemConfig> machines = {
        sys::dss8440(), sys::dgx1(), sys::dgx2(),
    };

    std::printf("8-GPU scaling by machine (mixed precision)\n\n");
    std::printf("%-15s", "workload");
    for (const auto &m : machines)
        std::printf(" %18s", m.name.c_str());
    std::printf("\n");
    for (const char *name : {"MLPf_Res50_MX", "MLPf_XFMR_Py",
                             "MLPf_GNMT_Py", "MLPf_NCF_Py"}) {
        auto spec = *models::findWorkload(name);
        std::printf("%-15s", name);
        for (const auto &m : machines) {
            train::Trainer trainer(m);
            train::RunOptions o1, o8;
            o1.num_gpus = 1;
            o8.num_gpus = 8;
            double s = trainer.run(spec, o1).total_seconds /
                       trainer.run(spec, o8).total_seconds;
            std::printf("         %8.2fx", s);
        }
        std::printf("\n");
    }

    std::printf("\n430 MB all-reduce across 8 GPUs:\n");
    for (const auto &m : machines) {
        auto r = net::ringAllReduce(m.topo, m.gpuSubset(8), 430e6);
        std::printf("  %-10s %-12s %7.2f ms\n", m.name.c_str(),
                    net::toString(r.fabric).c_str(), r.seconds * 1e3);
    }

    std::printf("\nDGX-2: pushing past 8 GPUs (Transformer):\n");
    sys::SystemConfig dgx2 = sys::dgx2();
    train::Trainer trainer(dgx2);
    auto spec = *models::findWorkload("MLPf_XFMR_Py");
    double base = 0.0;
    for (int n : {1, 2, 4, 8, 16}) {
        train::RunOptions opts;
        opts.num_gpus = n;
        auto r = trainer.run(spec, opts);
        if (n == 1)
            base = r.total_seconds;
        std::printf("  %2d GPUs: %7.1f min  (speedup %5.2fx)\n", n,
                    r.totalMinutes(), base / r.total_seconds);
    }
    return 0;
}
