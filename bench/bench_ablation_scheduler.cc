/**
 * @file
 * Ablation: scheduling policy quality — naive (paper Figure 4a),
 * greedy list scheduling, and the exact hierarchical optimum (Figure
 * 4b) against the work/critical-path lower bound, with DP search
 * effort, on the measured MLPerf job mix and on synthetic mixes of
 * varying scaling diversity.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/suite.h"
#include "sched/naive.h"
#include "sched/optimal.h"
#include "sys/machines.h"

namespace {

using namespace mlps;

void
compare(const char *label, const std::vector<sched::JobSpec> &jobs,
        int gpus)
{
    sched::Schedule naive = sched::naiveSchedule(jobs, gpus);
    sched::Schedule greedy = sched::greedySchedule(jobs, gpus);
    sched::OptimalResult opt = sched::optimalSchedule(jobs, gpus);
    double lb = sched::makespanLowerBound(jobs, gpus);
    std::printf("%-22s G=%d  naive %7.2f h  greedy %7.2f h  optimal "
                "%7.2f h  LB %7.2f h  util %4.1f%%  states %zu\n",
                label, gpus, naive.makespan() / 3600.0,
                greedy.makespan() / 3600.0, opt.makespan_s / 3600.0,
                lb / 3600.0, 100.0 * opt.schedule.utilization(),
                opt.states_explored);
}

/** Synthetic job with Amdahl-style scaling of given parallel frac. */
sched::JobSpec
syntheticJob(const std::string &name, double hours, double parallel)
{
    sched::JobSpec j;
    j.name = name;
    for (int w = 1; w <= 8; w *= 2) {
        double speedup = 1.0 / ((1.0 - parallel) + parallel / w);
        j.seconds_at_width[w] = hours * 3600.0 / speedup;
    }
    return j;
}

} // namespace

int
main()
{
    // Measured MLPerf mix.
    sys::SystemConfig dss = sys::dss8440();
    core::Suite suite(dss);
    const std::vector<std::string> names = {
        "MLPf_Res50_TF", "MLPf_Res50_MX", "MLPf_SSD_Py",
        "MLPf_MRCNN_Py", "MLPf_XFMR_Py",  "MLPf_GNMT_Py",
        "MLPf_NCF_Py",
    };
    std::vector<sched::JobSpec> mlperf_jobs;
    for (const auto &n : names) {
        sched::JobSpec j;
        j.name = n;
        for (int w = 1; w <= 8; w *= 2) {
            train::RunOptions o;
            o.num_gpus = w;
            o.precision = hw::Precision::Mixed;
            j.seconds_at_width[w] = suite.run(n, o).total_seconds;
        }
        mlperf_jobs.push_back(std::move(j));
    }

    std::printf("Scheduler ablation\n\n-- measured MLPerf mix --\n");
    for (int g : {2, 4, 8})
        compare("MLPerf mix", mlperf_jobs, g);

    std::printf("\n-- synthetic mixes --\n");
    // Homogeneous, perfectly scalable: naive is already optimal.
    std::vector<sched::JobSpec> uniform;
    for (int i = 0; i < 6; ++i)
        uniform.push_back(
            syntheticJob("uniform" + std::to_string(i), 2.0, 1.0));
    compare("uniform scalable", uniform, 4);

    // Diverse scaling: large optimal-vs-naive gap.
    std::vector<sched::JobSpec> diverse;
    diverse.push_back(syntheticJob("scales_well_a", 4.0, 0.99));
    diverse.push_back(syntheticJob("scales_well_b", 3.0, 0.98));
    diverse.push_back(syntheticJob("mediocre_a", 5.0, 0.80));
    diverse.push_back(syntheticJob("mediocre_b", 2.0, 0.75));
    diverse.push_back(syntheticJob("poor_a", 3.0, 0.40));
    diverse.push_back(syntheticJob("poor_b", 1.0, 0.30));
    diverse.push_back(syntheticJob("serial", 2.0, 0.05));
    for (int g : {2, 4, 8})
        compare("diverse scaling", diverse, g);
    return 0;
}
