/**
 * @file
 * Extension beyond the paper: the same study on adjacent GPU
 * generations. Re-runs the single-device column of Table IV on a T4
 * (the low-power part) and an A100 (the generation that followed the
 * paper), holding the rest of the machine fixed — a what-if the
 * paper's methodology enables directly.
 */

#include <cstdio>

#include "models/zoo.h"
#include "sys/machines.h"
#include "train/trainer.h"

namespace {

using namespace mlps;

/** Swap the GPU of a C4140 (M)-style NVLink box. */
sys::SystemConfig
boxWith(const hw::GpuSpec &gpu)
{
    sys::SystemConfig s = sys::c4140M();
    s.name = std::string("4x ") + gpu.name;
    s.gpu = gpu;
    if (gpu.nvlink_lanes == 0) {
        // Rebuild without NVLink edges for PCIe-only parts.
        sys::SystemConfig flat;
        flat.name = s.name;
        flat.cpu = s.cpu;
        flat.num_cpus = 2;
        flat.gpu = gpu;
        flat.num_gpus = 4;
        flat.cpu_nodes.push_back(flat.topo.addCpu("CPU0"));
        flat.cpu_nodes.push_back(flat.topo.addCpu("CPU1"));
        flat.topo.connect(flat.cpu_nodes[0], flat.cpu_nodes[1],
                          net::upi());
        for (int g = 0; g < 4; ++g) {
            flat.gpu_nodes.push_back(
                flat.topo.addGpu("GPU" + std::to_string(g)));
            flat.topo.connect(flat.gpu_nodes[g],
                              flat.cpu_nodes[g / 2], net::pcie3(16));
        }
        flat.validate();
        return flat;
    }
    s.validate();
    return s;
}

} // namespace

int
main()
{
    const hw::GpuSpec devices[] = {
        hw::teslaT4(),
        hw::teslaV100Sxm2_16(),
        hw::a100Sxm4_40(),
    };

    std::printf("Single-GPU time to quality across GPU generations "
                "(mixed precision, minutes)\n\n");
    std::printf("%-15s", "workload");
    for (const auto &d : devices)
        std::printf(" %16s", d.name.c_str());
    std::printf("   V100-to-A100\n");

    for (const auto &spec : models::mlperfSuite()) {
        std::printf("%-15s", spec.abbrev.c_str());
        double v100 = 0.0, a100 = 0.0;
        for (const auto &d : devices) {
            sys::SystemConfig box = boxWith(d);
            train::Trainer trainer(box);
            train::RunOptions opts;
            opts.num_gpus = 1;
            double t = trainer.run(spec, opts).totalMinutes();
            if (d.name.rfind("Tesla V100", 0) == 0)
                v100 = t;
            if (d.name.rfind("A100", 0) == 0)
                a100 = t;
            std::printf(" %16.1f", t);
        }
        std::printf("   %10.2fx\n", v100 / a100);
    }

    std::printf("\n4-GPU scaling on the A100 box (grows with the "
                "device: faster compute raises the bar for the "
                "fabric):\n");
    sys::SystemConfig a100_box = boxWith(hw::a100Sxm4_40());
    sys::SystemConfig v100_box = boxWith(hw::teslaV100Sxm2_16());
    for (const char *name : {"MLPf_XFMR_Py", "MLPf_Res50_MX"}) {
        auto spec = *models::findWorkload(name);
        for (auto *box : {&v100_box, &a100_box}) {
            train::Trainer trainer(*box);
            train::RunOptions o1, o4;
            o1.num_gpus = 1;
            o4.num_gpus = 4;
            double s = trainer.run(spec, o1).total_seconds /
                       trainer.run(spec, o4).total_seconds;
            std::printf("  %-15s on %-20s 1-to-4 speedup %.2fx\n",
                        name, box->name.c_str(), s);
        }
    }
    return 0;
}
