/**
 * @file
 * Extension beyond the paper: collectives on a hierarchical
 * datacenter fabric. The paper's Figure 5 stops at one box; this
 * bench prices the same all-reduce on a rack/pod topology. Part 1
 * sweeps GPU count on a 16x8 C4140 (M) pod and compares the flat
 * ring (which drags every byte across the spine) against the
 * hierarchical 2D ring and cross-rack tree the model picks from.
 * Part 2 prices the pod-scale fault classes: one degraded ToR versus
 * an oversubscribed spine. Part 3 measures simulator cost per pod
 * topology epoch at 512 GPUs.
 */

#include <chrono>
#include <cstdio>

#include "net/allreduce.h"
#include "net/topology.h"
#include "sys/machines.h"

int
main()
{
    using namespace mlps;
    const double bytes = 64.0 * 1024.0 * 1024.0;

    // Part 1: algorithm comparison across the pod.
    sys::SystemConfig pod = sys::withPod(sys::c4140M(), 16, 8);
    std::printf("64 MiB all-reduce on %s (%d GPUs max)\n"
                "(flat ring / hierarchical 2D ring / cross-rack tree "
                "/ auto pick)\n\n",
                pod.name.c_str(), pod.num_gpus);
    std::printf("%-6s %12s %12s %12s %12s\n", "GPUs", "flat(ms)",
                "2d-ring(ms)", "tree(ms)", "auto(ms)");
    for (int n : {8, 16, 32, 64, 128, 256, 512}) {
        auto gpus = pod.gpuSubset(n);
        auto flat = net::ringAllReduce(pod.topo, gpus, bytes);
        auto ring2d =
            net::hierarchicalRingAllReduce(pod.topo, gpus, bytes);
        auto tree =
            net::hierarchicalTreeAllReduce(pod.topo, gpus, bytes);
        auto pick =
            net::autoHierarchicalAllReduce(pod.topo, gpus, bytes);
        std::printf("%-6d %12.3f %12.3f %12.3f %12.3f\n", n,
                    flat.seconds * 1e3, ring2d.seconds * 1e3,
                    tree.seconds * 1e3, pick.seconds * 1e3);
    }

    // Part 2: pod-scale degradations, 256 GPUs.
    std::printf("\nDegraded pod, 256 GPUs, 64 MiB auto all-reduce\n\n");
    std::printf("%-22s %12s %10s\n", "fabric", "time(ms)", "vs healthy");
    auto gpus256 = pod.gpuSubset(256);
    double healthy =
        net::autoHierarchicalAllReduce(pod.topo, gpus256, bytes)
            .seconds;
    struct Case {
        const char *label;
        sys::SystemConfig sys;
    };
    const Case cases[] = {
        {"healthy", pod},
        {"tor 0 at x0.5", sys::withTorDegraded(pod, 0, 0.5)},
        {"tor 0 at x0.25", sys::withTorDegraded(pod, 0, 0.25)},
        {"spine at x0.5", sys::withSpineDegraded(pod, 0.5)},
        {"spine at x0.25", sys::withSpineDegraded(pod, 0.25)},
    };
    for (const Case &c : cases) {
        double s = net::autoHierarchicalAllReduce(c.sys.topo, gpus256,
                                                  bytes)
                       .seconds;
        std::printf("%-22s %12.3f %9.2fx\n", c.label, s * 1e3,
                    s / healthy);
    }

    // Part 3: simulator cost per pod topology epoch (mutate one
    // cross-rack edge, validate, re-price at 512 GPUs).
    int xr_edge = -1;
    for (int e = 0; e < pod.topo.edgeCount(); ++e)
        if (pod.topo.link(e).tier == net::FabricTier::CrossRack) {
            xr_edge = e;
            break;
        }
    constexpr int kEpochs = 200;
    double sink = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kEpochs; ++i) {
        pod.topo.setLinkBandwidthScale(xr_edge,
                                       i % 2 == 0 ? 0.5 : 1.0);
        pod.topo.validate();
        sink += net::autoHierarchicalAllReduce(pod.topo,
                                               pod.gpu_nodes, bytes)
                    .seconds;
    }
    auto t1 = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() /
        kEpochs;
    std::printf("\n%d pod epochs at 512 GPUs, %.2f ms/epoch "
                "(checksum %.3f)\n",
                kEpochs, ms, sink);
    return 0;
}
