/**
 * @file
 * Ablation: how the all-reduce model responds to fabric parameters —
 * NVLink brick count, PCIe lane width, and the host-staging derate.
 * Backs the DESIGN.md claim that Figure 5 is a topology/bandwidth
 * effect rather than a hard-coded constant, and quantifies each
 * knob's leverage on the most communication-bound workload (XFMR).
 */

#include <cstdio>

#include "net/allreduce.h"
#include "net/link.h"
#include "net/topology.h"

namespace {

using namespace mlps;

/** 4 GPUs fully meshed with the given NVLink bricks per pair. */
net::Topology
nvlinkMesh(int bricks)
{
    net::Topology topo;
    auto cpu = topo.addCpu("CPU0");
    std::vector<net::NodeId> gpus;
    for (int i = 0; i < 4; ++i)
        gpus.push_back(topo.addGpu("GPU" + std::to_string(i)));
    for (int i = 0; i < 4; ++i) {
        for (int j = i + 1; j < 4; ++j)
            topo.connect(gpus[i], gpus[j], net::nvlink(bricks));
        topo.connect(gpus[i], cpu, net::pcie3(16));
    }
    return topo;
}

/** 4 GPUs behind one switch with the given lane width per link. */
net::Topology
pcieSwitch(int lanes)
{
    net::Topology topo;
    auto cpu = topo.addCpu("CPU0");
    auto sw = topo.addSwitch("PLX0");
    topo.connect(sw, cpu, net::pcie3(16));
    for (int i = 0; i < 4; ++i) {
        auto g = topo.addGpu("GPU" + std::to_string(i));
        topo.connect(g, sw, net::pcie3(lanes));
    }
    return topo;
}

/** 2+2 GPUs on two sockets, no P2P (T640-style). */
net::Topology
cpuPcie()
{
    net::Topology topo;
    auto c0 = topo.addCpu("CPU0");
    auto c1 = topo.addCpu("CPU1");
    topo.connect(c0, c1, net::upi());
    for (int i = 0; i < 4; ++i) {
        auto g = topo.addGpu("GPU" + std::to_string(i));
        topo.connect(g, i < 2 ? c0 : c1, net::pcie3(16));
    }
    return topo;
}

void
report(const char *label, const net::Topology &topo,
       const net::AllReduceParams &params)
{
    const double bytes = 430e6; // XFMR-class fp16 gradients
    auto gpus = topo.gpus();
    auto r = net::ringAllReduce(topo, gpus, bytes, params);
    std::printf("%-34s %-12s %8.2f ms  (NVL %6.0f MB, PCIe %6.0f MB, "
                "UPI %5.0f MB)\n", label,
                net::toString(r.fabric).c_str(), r.seconds * 1e3,
                r.nvlink_bytes / 1e6, r.pcie_bytes / 1e6,
                r.upi_bytes / 1e6);
}

} // namespace

int
main()
{
    std::printf("Ablation: 430 MB ring all-reduce over 4 GPUs\n\n");
    net::AllReduceParams params;
    params.buckets = 24;

    std::printf("-- NVLink brick count --\n");
    for (int bricks : {1, 2, 4, 6}) {
        char label[64];
        std::snprintf(label, sizeof(label), "NVLink mesh, %d bricks/pair",
                      bricks);
        report(label, nvlinkMesh(bricks), params);
    }

    std::printf("\n-- PCIe lane width behind one switch --\n");
    for (int lanes : {4, 8, 16}) {
        char label[64];
        std::snprintf(label, sizeof(label), "PCIe switch, x%d per GPU",
                      lanes);
        report(label, pcieSwitch(lanes), params);
    }

    std::printf("\n-- Host-staged transport efficiency --\n");
    for (double derate : {0.25, 0.40, 0.55, 0.80}) {
        net::AllReduceParams p = params;
        p.staged_bw_derate = derate;
        char label[64];
        std::snprintf(label, sizeof(label), "CPU PCIe, staging derate %.2f",
                      derate);
        report(label, cpuPcie(), p);
    }

    std::printf("\n-- Bucket count (latency term) on CPU PCIe --\n");
    for (int buckets : {1, 24, 80, 200}) {
        net::AllReduceParams p = params;
        p.buckets = buckets;
        char label[64];
        std::snprintf(label, sizeof(label), "CPU PCIe, %d buckets",
                      buckets);
        report(label, cpuPcie(), p);
    }
    return 0;
}
