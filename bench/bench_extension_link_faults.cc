/**
 * @file
 * Extension beyond the paper: the interconnect under fabric faults.
 * The paper's Figure 5 compares healthy fabrics; this bench asks what
 * the same collectives cost when the fabric is sick. Part 1 prices a
 * 4-GPU ring all-reduce healthy, with degraded NVLink bandwidth, and
 * with an NVLink edge hard-down (forcing a ring rebuild / reroute).
 * Part 2 replays a generated link-fault trace against a training run
 * and reports the degraded-fabric overhead. Part 3 measures the
 * simulator-side cost of a topology epoch: mutate a link, re-validate,
 * and re-price the collective.
 */

#include <chrono>
#include <cstdio>

#include "fault/link_fault.h"
#include "models/zoo.h"
#include "net/allreduce.h"
#include "sys/machines.h"
#include "train/fabric_faults.h"

int
main()
{
    using namespace mlps;
    constexpr std::uint64_t kSeed = 42;

    // Part 1: all-reduce cost healthy vs degraded vs rerouted.
    std::printf("Ring all-reduce on C4140 (M), 4 GPUs\n"
                "(healthy / NVLink at half bandwidth / one NVLink "
                "edge hard-down)\n\n");
    std::printf("%-12s %12s %12s %12s %10s\n", "payload",
                "healthy(ms)", "half-bw(ms)", "edge-down(ms)",
                "reroutes");
    for (double mib : {16.0, 64.0, 256.0, 1024.0}) {
        double bytes = mib * 1024.0 * 1024.0;

        sys::SystemConfig healthy = sys::c4140M();
        auto h = net::ringAllReduce(healthy.topo, healthy.gpu_nodes,
                                    bytes);

        sys::SystemConfig half = sys::c4140M();
        sys::applyDegradedLinks(half, "nvlink:0.5");
        auto d = net::ringAllReduce(half.topo, half.gpu_nodes, bytes);

        sys::SystemConfig cut = sys::withNvlinkEdgeDown(sys::c4140M());
        auto r = net::ringAllReduce(cut.topo, cut.gpu_nodes, bytes);

        char label[32];
        std::snprintf(label, sizeof(label), "%.0f MiB", mib);
        std::printf("%-12s %12.3f %12.3f %12.3f %10d\n", label,
                    h.seconds * 1e3, d.seconds * 1e3, r.seconds * 1e3,
                    r.reroutes);
    }

    // One cut is free on a full mesh: a Hamiltonian cycle over the
    // surviving NVLink edges always remains, so the rebuilt ring
    // never detours. Cut three edges and the surviving NVLink graph
    // is a path — the ring is forced to reroute hops, which BFS
    // sends over surviving multi-hop NVLink routes (per-hop latency,
    // not a bandwidth cliff; the half-bw column above shows where
    // the real cost of a sick fabric lives).
    std::printf("\nThree NVLink edges down on C4140 (M) "
                "(surviving NVLink graph is a path)\n\n");
    std::printf("%-12s %12s %13s %10s\n", "payload", "healthy(ms)",
                "3-down(ms)", "reroutes");
    for (double mib : {64.0, 256.0}) {
        double bytes = mib * 1024.0 * 1024.0;
        sys::SystemConfig healthy = sys::c4140M();
        auto h = net::ringAllReduce(healthy.topo, healthy.gpu_nodes,
                                    bytes);
        sys::SystemConfig cut = sys::c4140M();
        sys::applyDegradedLinks(
            cut, "GPU0-GPU1:down,GPU1-GPU2:down,GPU2-GPU3:down");
        auto r = net::ringAllReduce(cut.topo, cut.gpu_nodes, bytes);
        char label[32];
        std::snprintf(label, sizeof(label), "%.0f MiB", mib);
        std::printf("%-12s %12.3f %13.3f %10d\n", label,
                    h.seconds * 1e3, r.seconds * 1e3, r.reroutes);
    }

    // Part 2: a training run under a generated link-fault trace.
    std::printf("\nResNet-50 (MXNet) on C4140 (M), 4 GPUs, link-fault "
                "replay, seed %llu\n\n",
                static_cast<unsigned long long>(kSeed));
    std::printf("%-9s %10s %10s %9s %7s %7s %9s %9s\n", "MTTF(h)",
                "base(min)", "exp(min)", "overhead", "epochs",
                "stalls", "reroutes", "goodput");
    sys::SystemConfig box = sys::c4140M();
    auto spec = *models::findWorkload("MLPf_Res50_MX");
    train::RunOptions opts;
    opts.num_gpus = 4;
    for (double mttf : {0.25, 1.0, 6.0, 48.0}) {
        fault::LinkFaultModel model(
            fault::LinkFaultConfig::datacenterProfile(mttf), kSeed);
        auto ft = train::applyLinkFaultTrace(box, spec, opts, model);
        std::printf("%-9.2f %10.1f %10.1f %8.1f%% %7d %7d %9d %9.3f\n",
                    mttf, ft.base.total_seconds / 60.0,
                    ft.expected_seconds / 60.0,
                    100.0 * ft.degraded_overhead_s /
                        ft.base.total_seconds,
                    ft.topology_epochs, ft.stalls, ft.max_reroutes,
                    ft.goodput());
    }

    // Part 3: simulator cost per topology epoch (mutate + validate +
    // re-price the collective).
    std::printf("\nSimulator overhead per topology epoch "
                "(mutate one NVLink edge, validate, re-price a "
                "64 MiB all-reduce)\n\n");
    sys::SystemConfig scratch = sys::c4140M();
    int nv_edge = -1;
    for (int e = 0; e < scratch.topo.edgeCount(); ++e)
        if (scratch.topo.link(e).kind == net::LinkKind::NvLink) {
            nv_edge = e;
            break;
        }
    constexpr int kEpochs = 2000;
    double sink = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kEpochs; ++i) {
        scratch.topo.setLinkDown(nv_edge, i % 2 == 0);
        scratch.topo.validate();
        sink += net::ringAllReduce(scratch.topo, scratch.gpu_nodes,
                                   64.0 * 1024.0 * 1024.0)
                    .seconds;
    }
    auto t1 = std::chrono::steady_clock::now();
    double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        kEpochs;
    std::printf("%d epochs, %.1f us/epoch (checksum %.3f)\n", kEpochs,
                us, sink);
    return 0;
}
