/**
 * @file
 * Reproduces Figure 4: scheduling the mix of 7 MLPerf workloads on a
 * multi-GPU machine. (a) naive scheduling distributes each benchmark
 * across all GPUs one-by-one; (b) the optimal schedule found by
 * searching the schedule space.
 *
 * Paper values: optimal scheduling saves ~3.0 h on 4 GPUs, ~4.1 h on
 * 2 GPUs, ~0.4 h on 8 GPUs. In the 4-GPU optimum the scalable
 * XFMR_Py and SSD_Py run distributed, MRCNN_Py gets two GPUs, and
 * the two ResNet-50s run on one GPU each.
 */

#include <cstdio>

#include "core/suite.h"
#include "exec/engine.h"
#include "sched/gantt.h"
#include "sched/naive.h"
#include "sched/optimal.h"
#include "sys/machines.h"

int
main()
{
    using namespace mlps;

    sys::SystemConfig dss = sys::dss8440();
    core::Suite suite(dss);
    const std::vector<std::string> workloads = {
        "MLPf_Res50_TF", "MLPf_Res50_MX", "MLPf_SSD_Py",
        "MLPf_MRCNN_Py", "MLPf_XFMR_Py",  "MLPf_GNMT_Py",
        "MLPf_NCF_Py",
    };
    exec::Engine engine;
    std::vector<sched::JobSpec> jobs =
        suite.jobSpecs(workloads, 8, &engine);

    std::printf("Figure 4: Scheduling a mix of MLPerf workloads "
                "(times measured on %s)\n", dss.name.c_str());
    for (int gpus : {2, 4, 8}) {
        sched::Schedule naive = sched::naiveSchedule(jobs, gpus);
        sched::OptimalResult opt = sched::optimalSchedule(jobs, gpus);
        double saved_h =
            (naive.makespan() - opt.makespan_s) / 3600.0;
        std::printf("\n== %d GPUs ==\n", gpus);
        std::printf("(a) naive: %.2f h   (b) optimal: %.2f h   "
                    "saved: %.1f h\n", naive.makespan() / 3600.0,
                    opt.makespan_s / 3600.0, saved_h);
        if (gpus == 4) {
            std::printf("\nnaive schedule:\n%s",
                        sched::renderGantt(naive).c_str());
            std::printf("\noptimal schedule:\n%s",
                        sched::renderGantt(opt.schedule).c_str());
            std::printf("\nplacements:\n%s",
                        sched::describeSchedule(opt.schedule).c_str());
        }
    }
    std::printf("\n(Paper: savings of ~4.1 h on 2 GPUs, ~3.0 h on 4 "
                "GPUs, ~0.4 h on 8 GPUs.)\n");
    return 0;
}
