/**
 * @file
 * Ablation: batch-size sensitivity of time-to-quality. MLPerf's
 * metric couples throughput (bigger batches run faster per sample)
 * with convergence (bigger global batches need more epochs past the
 * reference point) — this sweep exposes the optimum the paper's
 * submissions sit near, and the cliff behind NCF's batch cap.
 */

#include <cstdio>

#include "models/zoo.h"
#include "sys/machines.h"
#include "train/trainer.h"

int
main()
{
    using namespace mlps;

    sys::SystemConfig dss = sys::dss8440();
    train::Trainer trainer(dss);

    std::printf("Time-to-quality vs per-GPU batch (8 GPUs, %s)\n\n",
                dss.name.c_str());
    for (const char *name : {"MLPf_Res50_MX", "MLPf_XFMR_Py"}) {
        auto base = *models::findWorkload(name);
        std::printf("%s (submission batch %g):\n", name,
                    base.per_gpu_batch);
        for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
            wl::WorkloadSpec spec = base;
            spec.per_gpu_batch =
                std::max(1.0, base.per_gpu_batch * scale);
            train::RunOptions opts;
            opts.num_gpus = 8;
            auto r = trainer.run(spec, opts);
            std::printf("  batch %6g (fits as %4g): %8.1f min  "
                        "(%5.1f ms/iter, %.1f epochs, %g "
                        "steps/epoch)\n",
                        spec.per_gpu_batch, r.per_gpu_batch,
                        r.totalMinutes(), r.iter.iteration_s * 1e3,
                        r.epochs, r.steps_per_epoch);
        }
        std::printf("\n");
    }

    // NCF: the global-batch cap means extra per-GPU batch is simply
    // refused — the mechanism of its Table IV saturation.
    auto ncf = *models::findWorkload("MLPf_NCF_Py");
    std::printf("%s global-batch cap behaviour:\n",
                ncf.abbrev.c_str());
    for (int gpus : {1, 2, 4, 8}) {
        train::RunOptions opts;
        opts.num_gpus = gpus;
        auto r = trainer.run(ncf, opts);
        std::printf("  %d GPUs: per-GPU batch %8g, global %8g, "
                    "%6.1f s total\n", gpus, r.per_gpu_batch,
                    r.global_batch, r.total_seconds);
    }
    return 0;
}
