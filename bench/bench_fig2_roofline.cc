/**
 * @file
 * Reproduces Figure 2: the Tesla V100 roofline — empirical ceilings
 * for double, single and half precision (Empirical Roofline Toolkit
 * analog sweeps) with the profiled workload points placed on the
 * plot. Runs on T640 with one GPU, as in the paper.
 *
 * Paper claims to reproduce: ceilings ordered half > single > double;
 * every ML workload is memory-bound (left of the ridge, below the
 * flat roof); arithmetic intensity ordered DAWNBench > MLPerf >
 * DeepBench kernels (data reuse from end-to-end optimisation).
 */

#include <cstdio>

#include "core/characterize.h"
#include "exec/engine.h"
#include "stats/roofline.h"
#include "sys/machines.h"

int
main()
{
    using namespace mlps;

    sys::SystemConfig t640 = sys::t640();
    const hw::GpuSpec &gpu = t640.gpu;

    std::printf("Figure 2: %s roofline model\n\n", gpu.name.c_str());

    struct Ceiling {
        const char *label;
        hw::Precision p;
        bool tc;
    };
    const Ceiling ceilings[] = {
        {"double (fp64)", hw::Precision::FP64, false},
        {"single (fp32)", hw::Precision::FP32, false},
        {"half+TC (fp16)", hw::Precision::Mixed, true},
    };
    for (const auto &c : ceilings) {
        stats::RooflineModel roof =
            stats::deviceRoofline(gpu, c.p, c.tc);
        auto sweep = stats::empiricalRooflineSweep(gpu, c.p, c.tc, 3);
        double empirical_peak = 0.0;
        for (const auto &pt : sweep)
            empirical_peak = std::max(empirical_peak, pt.flops);
        std::printf("%-15s ridge at %7.2f FLOP/B, theoretical peak "
                    "%7.2f TFLOP/s, empirical %7.2f TFLOP/s\n",
                    c.label, roof.ridgeIntensity(),
                    roof.peak_flops / 1e12, empirical_peak / 1e12);
        std::printf("    sweep:");
        for (std::size_t i = 0; i < sweep.size(); i += 4)
            std::printf(" (%.3g, %.3g)", sweep[i].intensity,
                        sweep[i].flops / 1e12);
        std::printf("  [FLOP/B, TFLOP/s]\n");
    }

    std::printf("\nWorkload placements (1-GPU runs, kernel profiles):\n");
    std::printf("%-15s %-10s %10s %12s %s\n", "Workload", "Suite",
                "FLOP/B", "TFLOP/s", "bound");
    exec::Engine engine;
    core::CharacterizationReport rep =
        core::characterize(t640, 1, &engine);
    stats::RooflineModel half =
        stats::deviceRoofline(gpu, hw::Precision::Mixed, true);
    for (std::size_t i = 0; i < rep.roofline_points.size(); ++i) {
        const auto &pt = rep.roofline_points[i];
        std::printf("%-15s %-10s %10.2f %12.3f %s\n", pt.label.c_str(),
                    wl::toString(rep.suites[i]).c_str(), pt.intensity,
                    pt.flops / 1e12,
                    half.memoryBound(pt.intensity) ? "memory"
                                                   : "compute");
    }
    return 0;
}
