/**
 * @file
 * Reproduces Figure 1: PCA of the eight workload characteristics
 * (PCIe util, GPU util, CPU util, DDR footprint, HBM2 footprint, FLOP
 * throughput, memory throughput, epochs) over all fifteen workloads,
 * projected onto PC1-PC2 (Figure 1a) and PC3-PC4 (Figure 1b).
 *
 * Paper claims to reproduce: MLPerf separates from DAWNBench and
 * DeepBench along PC1 (dominated by GPU memory footprint); MLPerf
 * spans less of PC2 (stable FLOP throughput); PC1..PC4 cover ~88% of
 * variance; no two MLPerf benchmarks sit close together.
 */

#include <cmath>
#include <cstdio>

#include "core/characterize.h"
#include "exec/engine.h"
#include "prof/csv.h"
#include "stats/cluster.h"
#include "sys/machines.h"

int
main()
{
    using namespace mlps;

    sys::SystemConfig sys = sys::c4140K();
    exec::Engine engine;
    core::CharacterizationReport rep =
        core::characterize(sys, 1, &engine);

    std::printf("Figure 1: PCA of 8 workload characteristics "
                "(measured on %s)\n\n", sys.name.c_str());

    std::printf("Explained variance: ");
    for (std::size_t i = 0; i < rep.pca.explained_variance.size(); ++i)
        std::printf("PC%zu=%.1f%% ", i + 1,
                    100.0 * rep.pca.explained_variance[i]);
    std::printf("\nCumulative through PC4: %.1f%% (paper: 88%%)\n\n",
                100.0 * rep.pca.cumulativeVariance(4));

    const auto &names = prof::metricNames();
    for (int pc = 0; pc < 4; ++pc) {
        int dom = rep.pca.dominantMetric(pc);
        std::printf("PC%d dominant metric: %s (loading %.3f)\n", pc + 1,
                    names[dom].c_str(),
                    rep.pca.components.at(dom, pc));
    }

    std::printf("\n%-15s %-10s %9s %9s %9s %9s\n", "Workload", "Suite",
                "PC1", "PC2", "PC3", "PC4");
    for (std::size_t i = 0; i < rep.workloads.size(); ++i) {
        int r = static_cast<int>(i);
        std::printf("%-15s %-10s %9.3f %9.3f %9.3f %9.3f\n",
                    rep.workloads[i].c_str(),
                    wl::toString(rep.suites[i]).c_str(),
                    rep.pca.scores.at(r, 0), rep.pca.scores.at(r, 1),
                    rep.pca.scores.at(r, 2), rep.pca.scores.at(r, 3));
    }

    double sep_deep = core::suiteSeparation(rep, 0, wl::SuiteTag::MLPerf,
                                            wl::SuiteTag::DeepBench);
    double sep_dawn = core::suiteSeparation(rep, 0, wl::SuiteTag::MLPerf,
                                            wl::SuiteTag::DawnBench);
    std::printf("\nPC1 suite separation: MLPerf-DeepBench %.2f, "
                "MLPerf-DAWNBench %.2f (isolated clusters)\n",
                sep_deep, sep_dawn);

    // Export the scores in dstat's interchange format.
    prof::CsvWriter csv({"workload", "suite", "pc1", "pc2", "pc3",
                         "pc4"});
    for (std::size_t i = 0; i < rep.workloads.size(); ++i) {
        int r = static_cast<int>(i);
        char f[4][32];
        for (int c = 0; c < 4; ++c)
            std::snprintf(f[c], sizeof(f[c]), "%.4f",
                          rep.pca.scores.at(r, c));
        csv.addRow({rep.workloads[i], wl::toString(rep.suites[i]),
                    f[0], f[1], f[2], f[3]});
    }
    if (csv.writeFile("fig1_pca_scores.csv"))
        std::printf("Scores written to fig1_pca_scores.csv\n");

    // Companion view: which characteristics move together.
    stats::Matrix samples(prof::toMatrix(rep.metrics));
    stats::Matrix corr = stats::correlationMatrix(samples);
    std::printf("\nMetric correlation matrix:\n%14s", "");
    for (int c = 0; c < prof::kNumMetrics; ++c)
        std::printf(" %6.6s", names[c].c_str());
    std::printf("\n");
    for (int r = 0; r < prof::kNumMetrics; ++r) {
        std::printf("%14s", names[r].c_str());
        for (int c = 0; c < prof::kNumMetrics; ++c)
            std::printf(" %6.2f", corr.at(r, c));
        std::printf("\n");
    }

    // Companion view: hierarchical clustering of the standardised
    // characteristics. Cutting at three clusters recovers the suite
    // structure the PCA plot shows.
    stats::Dendrogram dendro =
        stats::agglomerate(stats::standardize(samples));
    auto clusters = dendro.cut(3);
    std::printf("\nHierarchical clustering (average linkage, k=3):\n");
    for (std::size_t i = 0; i < rep.workloads.size(); ++i) {
        std::printf("  cluster %d: %-15s (%s)\n", clusters[i],
                    rep.workloads[i].c_str(),
                    wl::toString(rep.suites[i]).c_str());
    }
    std::printf("\nDendrogram:\n%s",
                stats::renderDendrogram(dendro, rep.workloads).c_str());
    return 0;
}
