/**
 * @file
 * Reproduces Table IV: "Scaling efficiency" — training time on the
 * MLPerf reference machine (1x P100, v0.5 reference code) and on one
 * V100 of the DSS 8440 (tuned submissions, mixed precision), plus the
 * speedup of 2/4/8-GPU runs over 1 GPU on the DSS 8440.
 *
 * Paper values for comparison (Table IV):
 *   Res50_TF  8831.3 / 1016.9 min, 8.68x, 1.92/3.84/7.04
 *   Res50_MX  8831.1 /  957.0 min, 9.23x, 1.92/3.76/5.92
 *   SSD_Py     827.7 /  206.1 min, 4.02x, 1.94/3.72/7.28
 *   MRCNN_Py  4999.5 / 1840.4 min, 2.72x, 1.76/2.64/5.60
 *   XFMR_Py   1869.8 /  636.0 min, 2.94x, 1.42/2.92/5.60
 *   NCF_Py      46.7 /    2.2 min, 21.23x, 1.88/2.16/2.32
 */

#include <cstdio>

#include "core/suite.h"
#include "exec/engine.h"
#include "sys/machines.h"

int
main()
{
    mlps::sys::SystemConfig dss = mlps::sys::dss8440();
    mlps::core::Suite suite(dss);

    // Table IV covers every MLPerf benchmark except GNMT_Py.
    const std::vector<std::string> workloads = {
        "MLPf_Res50_TF", "MLPf_Res50_MX", "MLPf_SSD_Py",
        "MLPf_MRCNN_Py", "MLPf_XFMR_Py",  "MLPf_NCF_Py",
    };

    mlps::exec::Engine engine;
    auto rows = suite.scalingStudy(workloads, {1, 2, 4, 8}, &engine);

    std::printf("Table IV: Scaling efficiency (system: %s)\n\n",
                dss.name.c_str());
    std::printf("%-15s %12s %12s %8s %8s %8s %8s\n", "Benchmark",
                "1xP100(min)", "1xV100(min)", "P-to-V", "1-to-2",
                "1-to-4", "1-to-8");
    for (const auto &row : rows) {
        std::printf("%-15s %12.1f %12.1f %7.2fx %7.2fx %7.2fx %7.2fx\n",
                    row.workload.c_str(), row.p100_minutes,
                    row.v100_minutes, row.p_to_v, row.scaling.at(2),
                    row.scaling.at(4), row.scaling.at(8));
    }
    std::printf("\n%s\n", engine.summary().c_str());
    return 0;
}
