/**
 * @file
 * Reproduces Figure 5: training time on the five 4-GPU platforms,
 * whose only meaningful difference is the GPU interconnect topology
 * (Table III).
 *
 * Paper claims: NVLink systems (C4140 M/K) fastest; the PCIe-switch
 * C4140 (B) next (GPUDirect P2P over the switch); the CPU-PCIe T640
 * and R940xa slowest. NVLink-over-worst improvement: ~42% XFMR, ~17%
 * GNMT, ~30% MRCNN, ~11% image classification. NCF_Py reported in
 * seconds.
 */

#include <cstdio>
#include <vector>

#include "core/suite.h"
#include "exec/engine.h"
#include "sys/machines.h"

int
main()
{
    using namespace mlps;

    const std::vector<std::string> workloads = {
        "MLPf_Res50_TF", "MLPf_Res50_MX", "MLPf_SSD_Py",
        "MLPf_MRCNN_Py", "MLPf_XFMR_Py",  "MLPf_GNMT_Py",
        "MLPf_NCF_Py",
    };
    std::vector<sys::SystemConfig> systems = sys::figure5Systems();

    // One declarative batch over the workload x system grid
    // (row-major, matching the table below).
    core::Suite naming(systems.front());
    exec::Engine engine;
    std::vector<exec::RunRequest> batch;
    for (const auto &w : workloads) {
        for (const auto &s : systems) {
            train::RunOptions opts;
            opts.num_gpus = 4;
            opts.precision = hw::Precision::Mixed;
            exec::RunRequest req = naming.request(w, opts);
            req.system = s;
            batch.push_back(std::move(req));
        }
    }
    auto results = engine.run(std::move(batch));

    std::printf("Figure 5: Training time on 4-GPU systems "
                "(minutes; NCF_Py in seconds)\n\n");
    std::printf("%-15s", "Workload");
    for (const auto &s : systems)
        std::printf(" %11s", s.name.c_str());
    std::printf("  %s\n", "NVLink-vs-worst");

    std::size_t i = 0;
    for (const auto &w : workloads) {
        std::printf("%-15s", w.c_str());
        double best = 1e300, worst = 0.0;
        bool seconds = w == "MLPf_NCF_Py";
        for (std::size_t c = 0; c < systems.size(); ++c) {
            double t = results[i++].train.total_seconds;
            best = std::min(best, t);
            worst = std::max(worst, t);
            std::printf(" %11.1f", seconds ? t : t / 60.0);
        }
        std::printf("  %13.0f%%\n", 100.0 * (worst - best) / worst);
    }

    std::printf("\nCollective fabric at 4 GPUs:\n");
    for (const auto &s : systems)
        std::printf("  %-11s %s\n", s.name.c_str(),
                    net::toString(s.fabricFor(4)).c_str());
    return 0;
}
