/**
 * @file
 * google-benchmark micro-benchmarks of the simulator's own hot paths:
 * event queue churn, flow-level fair sharing, ring all-reduce
 * evaluation, a full training-run model, PCA, and the exact
 * scheduler. Useful when extending the simulator — these paths run
 * thousands of times inside the table/figure benches.
 */

#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/report.h"
#include "core/suite.h"
#include "exec/engine.h"
#include "models/zoo.h"
#include "net/allreduce.h"
#include "net/transfer.h"
#include "sched/optimal.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "stats/pca.h"
#include "sys/machines.h"

namespace {

using namespace mlps;

void
BM_EventQueue(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Simulation simu;
        long counter = 0;
        for (int i = 0; i < n; ++i) {
            simu.schedule((i * 37) % 1000 * sim::kMicrosecond,
                          [&counter] { ++counter; });
        }
        simu.run();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(10000);

void
BM_FlowSimulator(benchmark::State &state)
{
    sys::SystemConfig dss = sys::dss8440();
    for (auto _ : state) {
        net::FlowSimulator fsim(dss.topo);
        for (int g = 0; g < 8; ++g)
            fsim.addFlow(dss.cpu_nodes[g / 4], dss.gpu_nodes[g], 64e6);
        benchmark::DoNotOptimize(fsim.run());
    }
}
BENCHMARK(BM_FlowSimulator);

void
BM_RingAllReduce(benchmark::State &state)
{
    sys::SystemConfig dss = sys::dss8440();
    auto gpus = dss.gpuSubset(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto r = net::ringAllReduce(dss.topo, gpus, 430e6);
        benchmark::DoNotOptimize(r.seconds);
    }
}
BENCHMARK(BM_RingAllReduce)->Arg(2)->Arg(4)->Arg(8);

void
BM_TrainerRun(benchmark::State &state)
{
    sys::SystemConfig dss = sys::dss8440();
    train::Trainer trainer(dss);
    auto spec = *models::findWorkload("MLPf_Res50_MX");
    train::RunOptions opts;
    opts.num_gpus = 8;
    for (auto _ : state) {
        auto r = trainer.run(spec, opts);
        benchmark::DoNotOptimize(r.total_seconds);
    }
}
BENCHMARK(BM_TrainerRun);

void
BM_Pca(benchmark::State &state)
{
    sim::Rng rng(7);
    stats::Matrix samples(15, 8);
    for (int r = 0; r < 15; ++r)
        for (int c = 0; c < 8; ++c)
            samples.at(r, c) = rng.uniform(0.0, 100.0);
    for (auto _ : state) {
        auto res = stats::pca(samples);
        benchmark::DoNotOptimize(res.eigenvalues[0]);
    }
}
BENCHMARK(BM_Pca);

void
BM_OptimalSchedule(benchmark::State &state)
{
    std::vector<sched::JobSpec> jobs;
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
        sched::JobSpec j;
        j.name = "job" + std::to_string(i);
        double base = 3600.0 * (1 + i % 5);
        for (int w = 1; w <= 8; w *= 2)
            j.seconds_at_width[w] = base / (0.3 * w + 0.7);
        jobs.push_back(std::move(j));
    }
    for (auto _ : state) {
        auto r = sched::optimalSchedule(jobs, 8);
        benchmark::DoNotOptimize(r.makespan_s);
    }
}
BENCHMARK(BM_OptimalSchedule)->Arg(7)->Arg(10);

/**
 * The full study report through the exec engine, cold cache every
 * iteration. Arg is the worker count (0 = auto, i.e. MLPSIM_JOBS or
 * hardware concurrency) — comparing Arg(1) with Arg(0) shows the
 * serial-vs-parallel report wall time on the host.
 */
void
BM_StudyReport(benchmark::State &state)
{
    const int jobs = static_cast<int>(state.range(0));
    std::uint64_t hits = 0, unique = 0;
    int resolved = 0;
    for (auto _ : state) {
        exec::Engine engine(exec::ExecOptions{jobs});
        auto text = core::generateStudyReport({}, engine);
        benchmark::DoNotOptimize(text.data());
        auto s = engine.stats();
        hits = s.cache_hits;
        unique = s.unique_runs;
        resolved = s.jobs;
    }
    state.counters["workers"] = static_cast<double>(resolved);
    state.counters["cache_hits"] = static_cast<double>(hits);
    state.counters["unique_runs"] = static_cast<double>(unique);
}
BENCHMARK(BM_StudyReport)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

/**
 * The same report against a pre-warmed cache: every point is a hit,
 * so this measures the non-simulation cost (rendering, PCA, the
 * schedule search) plus cache lookups.
 */
void
BM_StudyReportWarm(benchmark::State &state)
{
    exec::Engine engine(exec::ExecOptions{1});
    auto warmup = core::generateStudyReport({}, engine);
    benchmark::DoNotOptimize(warmup.data());
    for (auto _ : state) {
        auto text = core::generateStudyReport({}, engine);
        benchmark::DoNotOptimize(text.data());
    }
    state.counters["cached_points"] =
        static_cast<double>(engine.cache().size());
}
BENCHMARK(BM_StudyReportWarm)->Unit(benchmark::kMillisecond);

/**
 * The report with a durable journal, cold on-disk cache: measures
 * the full simulate + encode + append + fflush cost of building a
 * journal from nothing. Compare with BM_StudyReportJournalWarm for
 * the durability overhead and payoff.
 */
void
BM_StudyReportJournalCold(benchmark::State &state)
{
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() / "mlpsim_bench_journal_cold")
            .string();
    std::uint64_t unique = 0;
    for (auto _ : state) {
        state.PauseTiming();
        fs::remove_all(dir);
        state.ResumeTiming();
        exec::ExecOptions opts(1);
        opts.cache_dir = dir;
        exec::Engine engine(std::move(opts));
        auto text = core::generateStudyReport({}, engine);
        benchmark::DoNotOptimize(text.data());
        unique = engine.stats().unique_runs;
    }
    fs::remove_all(dir);
    state.counters["unique_runs"] = static_cast<double>(unique);
}
BENCHMARK(BM_StudyReportJournalCold)->Unit(benchmark::kMillisecond);

/**
 * The report served entirely from a pre-built journal: load + decode
 * replaces simulation, so this is the crash-resume path a user hits
 * when a killed campaign restarts.
 */
void
BM_StudyReportJournalWarm(benchmark::State &state)
{
    namespace fs = std::filesystem;
    const std::string dir =
        (fs::temp_directory_path() / "mlpsim_bench_journal_warm")
            .string();
    fs::remove_all(dir);
    {
        exec::ExecOptions opts(1);
        opts.cache_dir = dir;
        exec::Engine engine(std::move(opts));
        auto warmup = core::generateStudyReport({}, engine);
        benchmark::DoNotOptimize(warmup.data());
    }
    std::uint64_t loaded = 0, unique = 0;
    for (auto _ : state) {
        exec::ExecOptions opts(1);
        opts.cache_dir = dir;
        exec::Engine engine(std::move(opts));
        auto text = core::generateStudyReport({}, engine);
        benchmark::DoNotOptimize(text.data());
        loaded = engine.stats().journal_loaded;
        unique = engine.stats().unique_runs;
    }
    fs::remove_all(dir);
    state.counters["journal_loaded"] = static_cast<double>(loaded);
    state.counters["unique_runs"] = static_cast<double>(unique);
}
BENCHMARK(BM_StudyReportJournalWarm)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
