file(REMOVE_RECURSE
  "libmlpsim.a"
)
