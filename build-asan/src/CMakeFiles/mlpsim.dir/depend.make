# Empty dependencies file for mlpsim.
# This may be replaced when dependencies are built.
