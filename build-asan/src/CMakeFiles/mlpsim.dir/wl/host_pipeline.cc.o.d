src/CMakeFiles/mlpsim.dir/wl/host_pipeline.cc.o: \
 /root/repo/src/wl/host_pipeline.cc /usr/include/stdc-predef.h \
 /root/repo/src/wl/host_pipeline.h
