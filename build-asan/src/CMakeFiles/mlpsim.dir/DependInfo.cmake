
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/benchmark.cc" "src/CMakeFiles/mlpsim.dir/core/benchmark.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/core/benchmark.cc.o.d"
  "/root/repo/src/core/characterize.cc" "src/CMakeFiles/mlpsim.dir/core/characterize.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/core/characterize.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/CMakeFiles/mlpsim.dir/core/registry.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/core/registry.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/mlpsim.dir/core/report.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/core/report.cc.o.d"
  "/root/repo/src/core/suite.cc" "src/CMakeFiles/mlpsim.dir/core/suite.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/core/suite.cc.o.d"
  "/root/repo/src/fault/fault_model.cc" "src/CMakeFiles/mlpsim.dir/fault/fault_model.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/fault/fault_model.cc.o.d"
  "/root/repo/src/hw/cpu.cc" "src/CMakeFiles/mlpsim.dir/hw/cpu.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/hw/cpu.cc.o.d"
  "/root/repo/src/hw/gpu.cc" "src/CMakeFiles/mlpsim.dir/hw/gpu.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/hw/gpu.cc.o.d"
  "/root/repo/src/hw/kernel_timing.cc" "src/CMakeFiles/mlpsim.dir/hw/kernel_timing.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/hw/kernel_timing.cc.o.d"
  "/root/repo/src/hw/precision.cc" "src/CMakeFiles/mlpsim.dir/hw/precision.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/hw/precision.cc.o.d"
  "/root/repo/src/models/builders.cc" "src/CMakeFiles/mlpsim.dir/models/builders.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/models/builders.cc.o.d"
  "/root/repo/src/models/deepbench.cc" "src/CMakeFiles/mlpsim.dir/models/deepbench.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/models/deepbench.cc.o.d"
  "/root/repo/src/models/drqa.cc" "src/CMakeFiles/mlpsim.dir/models/drqa.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/models/drqa.cc.o.d"
  "/root/repo/src/models/gnmt.cc" "src/CMakeFiles/mlpsim.dir/models/gnmt.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/models/gnmt.cc.o.d"
  "/root/repo/src/models/mask_rcnn.cc" "src/CMakeFiles/mlpsim.dir/models/mask_rcnn.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/models/mask_rcnn.cc.o.d"
  "/root/repo/src/models/ncf.cc" "src/CMakeFiles/mlpsim.dir/models/ncf.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/models/ncf.cc.o.d"
  "/root/repo/src/models/resnet.cc" "src/CMakeFiles/mlpsim.dir/models/resnet.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/models/resnet.cc.o.d"
  "/root/repo/src/models/ssd.cc" "src/CMakeFiles/mlpsim.dir/models/ssd.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/models/ssd.cc.o.d"
  "/root/repo/src/models/transformer.cc" "src/CMakeFiles/mlpsim.dir/models/transformer.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/models/transformer.cc.o.d"
  "/root/repo/src/models/zoo.cc" "src/CMakeFiles/mlpsim.dir/models/zoo.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/models/zoo.cc.o.d"
  "/root/repo/src/net/allreduce.cc" "src/CMakeFiles/mlpsim.dir/net/allreduce.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/net/allreduce.cc.o.d"
  "/root/repo/src/net/link.cc" "src/CMakeFiles/mlpsim.dir/net/link.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/net/link.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/CMakeFiles/mlpsim.dir/net/topology.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/net/topology.cc.o.d"
  "/root/repo/src/net/transfer.cc" "src/CMakeFiles/mlpsim.dir/net/transfer.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/net/transfer.cc.o.d"
  "/root/repo/src/prof/csv.cc" "src/CMakeFiles/mlpsim.dir/prof/csv.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/prof/csv.cc.o.d"
  "/root/repo/src/prof/device_monitor.cc" "src/CMakeFiles/mlpsim.dir/prof/device_monitor.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/prof/device_monitor.cc.o.d"
  "/root/repo/src/prof/kernel_profiler.cc" "src/CMakeFiles/mlpsim.dir/prof/kernel_profiler.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/prof/kernel_profiler.cc.o.d"
  "/root/repo/src/prof/metric_set.cc" "src/CMakeFiles/mlpsim.dir/prof/metric_set.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/prof/metric_set.cc.o.d"
  "/root/repo/src/prof/sys_monitor.cc" "src/CMakeFiles/mlpsim.dir/prof/sys_monitor.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/prof/sys_monitor.cc.o.d"
  "/root/repo/src/prof/trace.cc" "src/CMakeFiles/mlpsim.dir/prof/trace.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/prof/trace.cc.o.d"
  "/root/repo/src/sched/gantt.cc" "src/CMakeFiles/mlpsim.dir/sched/gantt.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/sched/gantt.cc.o.d"
  "/root/repo/src/sched/job_spec.cc" "src/CMakeFiles/mlpsim.dir/sched/job_spec.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/sched/job_spec.cc.o.d"
  "/root/repo/src/sched/naive.cc" "src/CMakeFiles/mlpsim.dir/sched/naive.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/sched/naive.cc.o.d"
  "/root/repo/src/sched/online.cc" "src/CMakeFiles/mlpsim.dir/sched/online.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/sched/online.cc.o.d"
  "/root/repo/src/sched/optimal.cc" "src/CMakeFiles/mlpsim.dir/sched/optimal.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/sched/optimal.cc.o.d"
  "/root/repo/src/sched/schedule.cc" "src/CMakeFiles/mlpsim.dir/sched/schedule.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/sched/schedule.cc.o.d"
  "/root/repo/src/sim/counters.cc" "src/CMakeFiles/mlpsim.dir/sim/counters.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/sim/counters.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/mlpsim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logger.cc" "src/CMakeFiles/mlpsim.dir/sim/logger.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/sim/logger.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/mlpsim.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/time.cc" "src/CMakeFiles/mlpsim.dir/sim/time.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/sim/time.cc.o.d"
  "/root/repo/src/stats/cluster.cc" "src/CMakeFiles/mlpsim.dir/stats/cluster.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/stats/cluster.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/CMakeFiles/mlpsim.dir/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/stats/descriptive.cc.o.d"
  "/root/repo/src/stats/eigen.cc" "src/CMakeFiles/mlpsim.dir/stats/eigen.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/stats/eigen.cc.o.d"
  "/root/repo/src/stats/matrix.cc" "src/CMakeFiles/mlpsim.dir/stats/matrix.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/stats/matrix.cc.o.d"
  "/root/repo/src/stats/pca.cc" "src/CMakeFiles/mlpsim.dir/stats/pca.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/stats/pca.cc.o.d"
  "/root/repo/src/stats/roofline.cc" "src/CMakeFiles/mlpsim.dir/stats/roofline.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/stats/roofline.cc.o.d"
  "/root/repo/src/sys/cluster.cc" "src/CMakeFiles/mlpsim.dir/sys/cluster.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/sys/cluster.cc.o.d"
  "/root/repo/src/sys/machines.cc" "src/CMakeFiles/mlpsim.dir/sys/machines.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/sys/machines.cc.o.d"
  "/root/repo/src/sys/system_config.cc" "src/CMakeFiles/mlpsim.dir/sys/system_config.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/sys/system_config.cc.o.d"
  "/root/repo/src/train/checkpoint.cc" "src/CMakeFiles/mlpsim.dir/train/checkpoint.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/train/checkpoint.cc.o.d"
  "/root/repo/src/train/energy.cc" "src/CMakeFiles/mlpsim.dir/train/energy.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/train/energy.cc.o.d"
  "/root/repo/src/train/multinode.cc" "src/CMakeFiles/mlpsim.dir/train/multinode.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/train/multinode.cc.o.d"
  "/root/repo/src/train/pipeline.cc" "src/CMakeFiles/mlpsim.dir/train/pipeline.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/train/pipeline.cc.o.d"
  "/root/repo/src/train/precision_policy.cc" "src/CMakeFiles/mlpsim.dir/train/precision_policy.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/train/precision_policy.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/mlpsim.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/train/trainer.cc.o.d"
  "/root/repo/src/train/training_job.cc" "src/CMakeFiles/mlpsim.dir/train/training_job.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/train/training_job.cc.o.d"
  "/root/repo/src/wl/convergence.cc" "src/CMakeFiles/mlpsim.dir/wl/convergence.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/wl/convergence.cc.o.d"
  "/root/repo/src/wl/dataset.cc" "src/CMakeFiles/mlpsim.dir/wl/dataset.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/wl/dataset.cc.o.d"
  "/root/repo/src/wl/host_pipeline.cc" "src/CMakeFiles/mlpsim.dir/wl/host_pipeline.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/wl/host_pipeline.cc.o.d"
  "/root/repo/src/wl/op.cc" "src/CMakeFiles/mlpsim.dir/wl/op.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/wl/op.cc.o.d"
  "/root/repo/src/wl/op_graph.cc" "src/CMakeFiles/mlpsim.dir/wl/op_graph.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/wl/op_graph.cc.o.d"
  "/root/repo/src/wl/workload.cc" "src/CMakeFiles/mlpsim.dir/wl/workload.cc.o" "gcc" "src/CMakeFiles/mlpsim.dir/wl/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
