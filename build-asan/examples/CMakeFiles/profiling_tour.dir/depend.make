# Empty dependencies file for profiling_tour.
# This may be replaced when dependencies are built.
