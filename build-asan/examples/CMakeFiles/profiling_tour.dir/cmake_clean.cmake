file(REMOVE_RECURSE
  "CMakeFiles/profiling_tour.dir/profiling_tour.cpp.o"
  "CMakeFiles/profiling_tour.dir/profiling_tour.cpp.o.d"
  "profiling_tour"
  "profiling_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiling_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
