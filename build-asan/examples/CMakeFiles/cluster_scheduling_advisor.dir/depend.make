# Empty dependencies file for cluster_scheduling_advisor.
# This may be replaced when dependencies are built.
