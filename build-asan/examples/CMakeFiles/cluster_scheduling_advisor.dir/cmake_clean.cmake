file(REMOVE_RECURSE
  "CMakeFiles/cluster_scheduling_advisor.dir/cluster_scheduling_advisor.cpp.o"
  "CMakeFiles/cluster_scheduling_advisor.dir/cluster_scheduling_advisor.cpp.o.d"
  "cluster_scheduling_advisor"
  "cluster_scheduling_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_scheduling_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
