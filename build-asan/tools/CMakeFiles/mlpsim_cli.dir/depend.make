# Empty dependencies file for mlpsim_cli.
# This may be replaced when dependencies are built.
