file(REMOVE_RECURSE
  "CMakeFiles/mlpsim_cli.dir/mlpsim_cli.cc.o"
  "CMakeFiles/mlpsim_cli.dir/mlpsim_cli.cc.o.d"
  "mlpsim"
  "mlpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
