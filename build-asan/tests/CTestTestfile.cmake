# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-asan/tests/umbrella_test[1]_include.cmake")
include("/root/repo/build-asan/tests/hw_test[1]_include.cmake")
include("/root/repo/build-asan/tests/net_test[1]_include.cmake")
include("/root/repo/build-asan/tests/net_property_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sys_test[1]_include.cmake")
include("/root/repo/build-asan/tests/wl_test[1]_include.cmake")
include("/root/repo/build-asan/tests/models_test[1]_include.cmake")
include("/root/repo/build-asan/tests/model_structure_test[1]_include.cmake")
include("/root/repo/build-asan/tests/train_test[1]_include.cmake")
include("/root/repo/build-asan/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build-asan/tests/cluster_test[1]_include.cmake")
include("/root/repo/build-asan/tests/multinode_test[1]_include.cmake")
include("/root/repo/build-asan/tests/online_sched_test[1]_include.cmake")
include("/root/repo/build-asan/tests/energy_test[1]_include.cmake")
include("/root/repo/build-asan/tests/prof_test[1]_include.cmake")
include("/root/repo/build-asan/tests/trace_test[1]_include.cmake")
include("/root/repo/build-asan/tests/stats_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sched_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_test[1]_include.cmake")
include("/root/repo/build-asan/tests/report_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build-asan/tests/fault_test[1]_include.cmake")
include("/root/repo/build-asan/tests/matrix_sweep_test[1]_include.cmake")
include("/root/repo/build-asan/tests/paper_claims_test[1]_include.cmake")
