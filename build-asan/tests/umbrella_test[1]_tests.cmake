add_test([=[Umbrella.EveryModuleReachable]=]  /root/repo/build-asan/tests/umbrella_test [==[--gtest_filter=Umbrella.EveryModuleReachable]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.EveryModuleReachable]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-asan/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_test_TESTS Umbrella.EveryModuleReachable)
