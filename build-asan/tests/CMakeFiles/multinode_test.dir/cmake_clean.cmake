file(REMOVE_RECURSE
  "CMakeFiles/multinode_test.dir/multinode_test.cc.o"
  "CMakeFiles/multinode_test.dir/multinode_test.cc.o.d"
  "multinode_test"
  "multinode_test.pdb"
  "multinode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multinode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
