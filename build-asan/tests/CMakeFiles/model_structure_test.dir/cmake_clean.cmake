file(REMOVE_RECURSE
  "CMakeFiles/model_structure_test.dir/model_structure_test.cc.o"
  "CMakeFiles/model_structure_test.dir/model_structure_test.cc.o.d"
  "model_structure_test"
  "model_structure_test.pdb"
  "model_structure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
