# Empty dependencies file for model_structure_test.
# This may be replaced when dependencies are built.
