file(REMOVE_RECURSE
  "CMakeFiles/online_sched_test.dir/online_sched_test.cc.o"
  "CMakeFiles/online_sched_test.dir/online_sched_test.cc.o.d"
  "online_sched_test"
  "online_sched_test.pdb"
  "online_sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
