# Empty dependencies file for online_sched_test.
# This may be replaced when dependencies are built.
