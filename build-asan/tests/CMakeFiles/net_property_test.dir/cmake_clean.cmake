file(REMOVE_RECURSE
  "CMakeFiles/net_property_test.dir/net_property_test.cc.o"
  "CMakeFiles/net_property_test.dir/net_property_test.cc.o.d"
  "net_property_test"
  "net_property_test.pdb"
  "net_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
