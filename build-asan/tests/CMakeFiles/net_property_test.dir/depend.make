# Empty dependencies file for net_property_test.
# This may be replaced when dependencies are built.
