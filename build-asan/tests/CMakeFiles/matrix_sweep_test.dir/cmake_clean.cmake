file(REMOVE_RECURSE
  "CMakeFiles/matrix_sweep_test.dir/matrix_sweep_test.cc.o"
  "CMakeFiles/matrix_sweep_test.dir/matrix_sweep_test.cc.o.d"
  "matrix_sweep_test"
  "matrix_sweep_test.pdb"
  "matrix_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
