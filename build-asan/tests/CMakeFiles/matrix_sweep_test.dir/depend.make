# Empty dependencies file for matrix_sweep_test.
# This may be replaced when dependencies are built.
