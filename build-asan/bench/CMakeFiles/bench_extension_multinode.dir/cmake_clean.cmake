file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_multinode.dir/bench_extension_multinode.cc.o"
  "CMakeFiles/bench_extension_multinode.dir/bench_extension_multinode.cc.o.d"
  "bench_extension_multinode"
  "bench_extension_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
