# Empty dependencies file for bench_extension_multinode.
# This may be replaced when dependencies are built.
