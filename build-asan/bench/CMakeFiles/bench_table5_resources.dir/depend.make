# Empty dependencies file for bench_table5_resources.
# This may be replaced when dependencies are built.
