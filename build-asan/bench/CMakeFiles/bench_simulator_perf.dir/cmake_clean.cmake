file(REMOVE_RECURSE
  "CMakeFiles/bench_simulator_perf.dir/bench_simulator_perf.cc.o"
  "CMakeFiles/bench_simulator_perf.dir/bench_simulator_perf.cc.o.d"
  "bench_simulator_perf"
  "bench_simulator_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulator_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
