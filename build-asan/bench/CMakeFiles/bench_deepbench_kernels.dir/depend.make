# Empty dependencies file for bench_deepbench_kernels.
# This may be replaced when dependencies are built.
