file(REMOVE_RECURSE
  "CMakeFiles/bench_deepbench_kernels.dir/bench_deepbench_kernels.cc.o"
  "CMakeFiles/bench_deepbench_kernels.dir/bench_deepbench_kernels.cc.o.d"
  "bench_deepbench_kernels"
  "bench_deepbench_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deepbench_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
