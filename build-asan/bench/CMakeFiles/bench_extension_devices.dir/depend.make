# Empty dependencies file for bench_extension_devices.
# This may be replaced when dependencies are built.
