file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_devices.dir/bench_extension_devices.cc.o"
  "CMakeFiles/bench_extension_devices.dir/bench_extension_devices.cc.o.d"
  "bench_extension_devices"
  "bench_extension_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
