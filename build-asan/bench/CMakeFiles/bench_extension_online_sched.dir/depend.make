# Empty dependencies file for bench_extension_online_sched.
# This may be replaced when dependencies are built.
