file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_online_sched.dir/bench_extension_online_sched.cc.o"
  "CMakeFiles/bench_extension_online_sched.dir/bench_extension_online_sched.cc.o.d"
  "bench_extension_online_sched"
  "bench_extension_online_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_online_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
