# Empty dependencies file for bench_fig4_scheduling.
# This may be replaced when dependencies are built.
