file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_scheduling.dir/bench_fig4_scheduling.cc.o"
  "CMakeFiles/bench_fig4_scheduling.dir/bench_fig4_scheduling.cc.o.d"
  "bench_fig4_scheduling"
  "bench_fig4_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
