file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_dgx.dir/bench_extension_dgx.cc.o"
  "CMakeFiles/bench_extension_dgx.dir/bench_extension_dgx.cc.o.d"
  "bench_extension_dgx"
  "bench_extension_dgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_dgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
