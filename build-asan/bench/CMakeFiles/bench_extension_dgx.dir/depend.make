# Empty dependencies file for bench_extension_dgx.
# This may be replaced when dependencies are built.
