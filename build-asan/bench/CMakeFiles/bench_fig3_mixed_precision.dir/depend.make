# Empty dependencies file for bench_fig3_mixed_precision.
# This may be replaced when dependencies are built.
