# Empty dependencies file for bench_table2_suite.
# This may be replaced when dependencies are built.
