file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_suite.dir/bench_table2_suite.cc.o"
  "CMakeFiles/bench_table2_suite.dir/bench_table2_suite.cc.o.d"
  "bench_table2_suite"
  "bench_table2_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
