# Empty dependencies file for bench_extension_energy.
# This may be replaced when dependencies are built.
