file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_energy.dir/bench_extension_energy.cc.o"
  "CMakeFiles/bench_extension_energy.dir/bench_extension_energy.cc.o.d"
  "bench_extension_energy"
  "bench_extension_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
