# Empty dependencies file for bench_table4_scaling.
# This may be replaced when dependencies are built.
