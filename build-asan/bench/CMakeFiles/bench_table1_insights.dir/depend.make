# Empty dependencies file for bench_table1_insights.
# This may be replaced when dependencies are built.
