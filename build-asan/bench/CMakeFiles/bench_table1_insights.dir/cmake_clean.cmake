file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_insights.dir/bench_table1_insights.cc.o"
  "CMakeFiles/bench_table1_insights.dir/bench_table1_insights.cc.o.d"
  "bench_table1_insights"
  "bench_table1_insights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_insights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
