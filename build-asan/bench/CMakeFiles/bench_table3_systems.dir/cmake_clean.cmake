file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_systems.dir/bench_table3_systems.cc.o"
  "CMakeFiles/bench_table3_systems.dir/bench_table3_systems.cc.o.d"
  "bench_table3_systems"
  "bench_table3_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
