# Empty dependencies file for bench_table3_systems.
# This may be replaced when dependencies are built.
