# Empty dependencies file for bench_fig5_topology.
# This may be replaced when dependencies are built.
