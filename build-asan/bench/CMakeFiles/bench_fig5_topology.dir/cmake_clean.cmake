file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_topology.dir/bench_fig5_topology.cc.o"
  "CMakeFiles/bench_fig5_topology.dir/bench_fig5_topology.cc.o.d"
  "bench_fig5_topology"
  "bench_fig5_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
